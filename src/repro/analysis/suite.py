"""Programmatic access to the experiment suite.

The benchmarks under ``benchmarks/`` are pytest files, but each exposes a
pure ``run_experiment()`` returning its table rows. This module loads
those files by path and runs them outside pytest, which powers
``python -m repro experiments`` — regenerate any experiment table from a
shell, no test runner involved.
"""

from __future__ import annotations

import importlib.util
import re
import sys
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConfigurationError

#: Experiment id -> benchmark file stem.
_FILE_PATTERN = re.compile(r"test_(e\d+)_[a-z_0-9]+\.py$")


def benchmarks_dir() -> Path:
    """Locate the repository's ``benchmarks/`` directory.

    Works from a source checkout (the layout this library ships in); the
    directory can also be supplied explicitly to :func:`discover`.
    """
    here = Path(__file__).resolve()
    for ancestor in here.parents:
        candidate = ancestor / "benchmarks"
        if (candidate / "conftest.py").exists():
            return candidate
    raise ConfigurationError(
        "benchmarks/ directory not found; pass its path explicitly"
    )


def discover(directory: Path | None = None) -> dict[str, Path]:
    """Map experiment ids (``e1``..) to their benchmark files."""
    directory = directory or benchmarks_dir()
    found: dict[str, Path] = {}
    for path in sorted(directory.glob("test_e*_*.py")):
        match = _FILE_PATTERN.match(path.name)
        if match:
            found[match.group(1)] = path
    return found


def load_runner(path: Path) -> Callable[[], Any]:
    """Import a benchmark file and return its ``run_experiment``.

    The benchmark files import their shared ``conftest`` helpers by
    module name, so the benchmarks directory joins ``sys.path`` for the
    import (and stays there; repeat loads are cheap).
    """
    directory = str(path.parent)
    if directory not in sys.path:
        sys.path.insert(0, directory)
    spec = importlib.util.spec_from_file_location(f"repro_bench_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise ConfigurationError(f"cannot load benchmark file {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    runner = getattr(module, "run_experiment", None)
    if runner is None:
        raise ConfigurationError(
            f"{path.name} exposes no run_experiment() "
            "(performance microbenchmarks are pytest-only)"
        )
    return runner


def run_experiments(
    only: list[str] | None = None,
    directory: Path | None = None,
) -> dict[str, Any]:
    """Run the selected experiments; returns id -> run_experiment result.

    ``only`` filters by experiment id (``["e3", "e13"]``); ``None`` runs
    everything discovered. Unknown ids raise.
    """
    available = discover(directory)
    if only is None:
        selected = dict(available)
    else:
        selected = {}
        for key in only:
            normalised = key.lower().strip()
            if normalised not in available:
                raise ConfigurationError(
                    f"unknown experiment {key!r}; available: "
                    f"{', '.join(sorted(available, key=_numeric))}"
                )
            selected[normalised] = available[normalised]
    results: dict[str, Any] = {}
    for key in sorted(selected, key=_numeric):
        results[key] = load_runner(selected[key])()
    return results


def _numeric(experiment_id: str) -> int:
    return int(experiment_id[1:])
