"""Small statistics helpers for experiment reporting.

The experiment tables report rates over finite seed batches; a bare
"100%" over 25 seeds and over 1000 seeds carry very different weight.
:func:`wilson_interval` provides the standard binomial confidence
interval (Wilson score — well-behaved at the 0/1 extremes where the
normal approximation fails, which is exactly where our rates live), and
:func:`rate_with_ci` formats a rate with it for table cells.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: z-scores for the usual confidence levels.
Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds on the true rate. Handles the
    boundary cases (0 or all successes) gracefully — unlike the Wald
    interval, which collapses to a width of zero there.
    """
    if trials <= 0:
        raise ConfigurationError("wilson_interval needs at least one trial")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes={successes} outside [0, trials={trials}]"
        )
    z = Z_SCORES.get(confidence)
    if z is None:
        raise ConfigurationError(
            f"unsupported confidence {confidence}; pick one of "
            f"{sorted(Z_SCORES)}"
        )
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # The exact bounds at the extremes are 0 and 1; keep them there
    # rather than a float epsilon away (p must lie inside the interval).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def rate_with_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> str:
    """``"96% [80%, 99%]"``-style cell text for experiment tables."""
    low, high = wilson_interval(successes, trials, confidence)
    rate = 100.0 * successes / trials
    return f"{rate:.0f}% [{100 * low:.0f}%, {100 * high:.0f}%]"


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Deterministic nearest-rank-with-interpolation estimator (the numpy
    ``linear`` method) over a copy of ``values``; used for the service
    latency tables (p50/p99 commit latency) where the registry's
    count/sum/min/max histograms are too coarse.
    """
    if not values:
        raise ConfigurationError("percentile needs at least one value")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q={q!r} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def min_trials_for_zero_failures(target_rate: float, confidence: float = 0.95) -> int:
    """How many all-success trials certify a rate of at least ``target``?

    Inverts the Wilson lower bound at ``successes == trials``: the
    smallest batch size whose zero-failure outcome still places the true
    rate above ``target_rate`` with the given confidence. Useful when
    sizing seed batches for "must be 100%" claims.
    """
    if not 0.0 < target_rate < 1.0:
        raise ConfigurationError("target_rate must be strictly inside (0, 1)")
    trials = 1
    while trials < 1_000_000:
        low, _high = wilson_interval(trials, trials, confidence)
        if low >= target_rate:
            return trials
        trials += 1
    raise ConfigurationError("target_rate too demanding")
