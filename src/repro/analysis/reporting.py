"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows EXPERIMENTS.md records; this module
keeps the formatting in one place so every experiment reads alike.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render an aligned ASCII table with a title rule."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    print()
    print(render_table(title, headers, rows))
    print()


def percent(rate: float) -> str:
    """A rate in [0, 1] rendered as a percentage."""
    return f"{100.0 * rate:.0f}%"
