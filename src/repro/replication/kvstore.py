"""A replicated key-value store: the canonical state machine on the log.

Commands are deterministic (``set`` / ``del``); because every correct
replica commits the same command sequence (the replicated-log guarantee),
every correct replica materialises the same store — byzantine replicas
included in the membership notwithstanding.

For checkpointing (``repro.service``) the store also exposes a *canonical
digest* — a collision-resistant hash of its contents that is a pure
function of the applied command sequence — and an exact
``snapshot()``/``restore()`` pair, so a certified snapshot installed on a
recovering replica reproduces the digest bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro.crypto.encoding import canonical_bytes
from repro.errors import EncodingError


@dataclass(frozen=True, slots=True)
class Command:
    """One deterministic store operation."""

    op: str  # "set" | "del"
    key: str
    value: Any = None

    def canonical(self) -> Any:
        return (self.op, self.key, self.value)


class KeyValueStore:
    """Deterministic state machine over :class:`Command` sequences."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.applied = 0

    def apply(self, command: Any) -> None:
        """Apply one command; unknown shapes are ignored deterministically.

        Byzantine replicas can propose garbage commands; determinism (and
        hence replica convergence) only requires every correct replica to
        handle the garbage identically — ignoring it is the simplest
        uniform rule.
        """
        self.applied += 1
        if not isinstance(command, Command):
            return
        if command.op == "set":
            self._data[command.key] = command.value
        elif command.op == "del":
            self._data.pop(command.key, None)

    def apply_all(self, commands: Iterable[Any]) -> "KeyValueStore":
        for command in commands:
            self.apply(command)
        return self

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy of the contents (the transferable state)."""
        return dict(self._data)

    def restore(self, snapshot: dict[str, Any], applied: int = 0) -> "KeyValueStore":
        """Replace the contents with ``snapshot`` (inverse of :meth:`snapshot`).

        ``applied`` resets the command counter to the value the snapshot
        was taken at, so a restored store is indistinguishable — digest
        included — from one that applied the original sequence itself.
        """
        self._data = dict(snapshot)
        self.applied = applied
        return self

    def digest(self) -> str:
        """Canonical content hash (hex): equal iff the contents are equal.

        The hash covers the sorted ``(key, value)`` pairs in the canonical
        byte encoding, so it is independent of insertion order and of any
        ignored (non-:class:`Command`) inputs. Values outside the canonical
        vocabulary fall back to their ``repr`` — still deterministic across
        replicas because a committed value is the *same object graph* on
        every correct replica.
        """
        hasher = hashlib.sha256()
        for key in sorted(self._data):
            hasher.update(canonical_bytes(key))
            try:
                hasher.update(canonical_bytes(self._data[key]))
            except EncodingError:
                hasher.update(canonical_bytes(repr(self._data[key])))
        return hasher.hexdigest()

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __len__(self) -> int:
        return len(self._data)


def materialise(command_log: Iterable[Any]) -> dict[str, Any]:
    """The store a replica reaches after applying ``command_log``."""
    return KeyValueStore().apply_all(command_log).snapshot()
