"""A replicated key-value store: the canonical state machine on the log.

Commands are deterministic (``set`` / ``del``); because every correct
replica commits the same command sequence (the replicated-log guarantee),
every correct replica materialises the same store — byzantine replicas
included in the membership notwithstanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True, slots=True)
class Command:
    """One deterministic store operation."""

    op: str  # "set" | "del"
    key: str
    value: Any = None

    def canonical(self) -> Any:
        return (self.op, self.key, self.value)


class KeyValueStore:
    """Deterministic state machine over :class:`Command` sequences."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.applied = 0

    def apply(self, command: Any) -> None:
        """Apply one command; unknown shapes are ignored deterministically.

        Byzantine replicas can propose garbage commands; determinism (and
        hence replica convergence) only requires every correct replica to
        handle the garbage identically — ignoring it is the simplest
        uniform rule.
        """
        self.applied += 1
        if not isinstance(command, Command):
            return
        if command.op == "set":
            self._data[command.key] = command.value
        elif command.op == "del":
            self._data.pop(command.key, None)

    def apply_all(self, commands: Iterable[Any]) -> "KeyValueStore":
        for command in commands:
            self.apply(command)
        return self

    def snapshot(self) -> dict[str, Any]:
        return dict(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __len__(self) -> int:
        return len(self._data)


def materialise(command_log: Iterable[Any]) -> dict[str, Any]:
    """The store a replica reaches after applying ``command_log``."""
    return KeyValueStore().apply_all(command_log).snapshot()
