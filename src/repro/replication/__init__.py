"""Replicated state machines over the transformed protocol (extension)."""

from dataclasses import dataclass

from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.replication.kvstore import Command, KeyValueStore, materialise
from repro.replication.log import (
    NOOP,
    EngineFactory,
    ReplicatedLogProcess,
    SlotEnv,
    SlotEnvelope,
    SlotTimerProxy,
)
from repro.sim.network import DelayModel, LinkModel
from repro.sim.world import World


@dataclass(slots=True)
class ReplicatedSystem:
    """A runnable replicated-log deployment."""

    world: World
    replicas: list[ReplicatedLogProcess]
    byzantine_pids: frozenset[int]

    @property
    def correct_pids(self) -> frozenset[int]:
        return frozenset(range(len(self.replicas))) - self.byzantine_pids

    def run(self, max_events: int = 2_000_000, max_time: float = 10_000.0):
        return self.world.run(max_events=max_events, max_time=max_time)

    def correct_logs(self) -> list[list]:
        return [
            self.replicas[pid].command_log() for pid in sorted(self.correct_pids)
        ]

    def converged(self) -> bool:
        """All correct replicas finished every slot with identical logs."""
        logs = self.correct_logs()
        return (
            all(self.replicas[pid].finished for pid in self.correct_pids)
            and len({tuple(map(repr, log)) for log in logs}) == 1
        )


def build_replicated_system(
    commands: list[list],
    target_slots: int,
    f: int | None = None,
    seed: int = 0,
    byzantine: dict[int, EngineFactory] | None = None,
    delay_model: DelayModel | None = None,
    config: ModuleConfig | None = None,
    link_model: LinkModel | None = None,
    transport: str = "none",
) -> ReplicatedSystem:
    """Build an n-replica log deployment (n = len(commands)).

    ``commands[pid]`` is the command queue replica ``pid`` proposes, one
    per slot. ``byzantine`` maps a replica to the consensus-engine
    factory used for *every* slot it participates in (any transformed
    attack class fits). ``link_model``/``transport`` expose the faulty
    wire exactly as in :class:`~repro.sim.world.World`.
    """
    byzantine = dict(byzantine or {})
    n = len(commands)
    params = SystemParameters.for_n(n, f=f)
    replicas = []
    for pid in range(n):
        kwargs = dict(
            commands=commands[pid],
            params=params,
            seed=seed,
            target_slots=target_slots,
            config=config,
        )
        if pid in byzantine:
            kwargs["engine_factory"] = byzantine[pid]
        replicas.append(ReplicatedLogProcess(**kwargs))
    world = World(
        replicas,
        seed=seed,
        delay_model=delay_model,
        link_model=link_model,
        transport=transport,
    )
    return ReplicatedSystem(
        world=world, replicas=replicas, byzantine_pids=frozenset(byzantine)
    )


__all__ = [
    "Command",
    "EngineFactory",
    "KeyValueStore",
    "NOOP",
    "ReplicatedLogProcess",
    "ReplicatedSystem",
    "SlotEnv",
    "SlotEnvelope",
    "SlotTimerProxy",
    "build_replicated_system",
    "materialise",
]
