"""Byzantine fault-tolerant state-machine replication over Vector Consensus.

The paper motivates consensus as "a fundamental paradigm for
fault-tolerant distributed systems"; this module closes the loop by
building the standard application on top of the transformed protocol: a
**replicated log**. Each log *slot* is decided by one independent
instance of the Figure 3 protocol; the decided vector's non-null entries
are appended in proposer order, giving every correct replica the same
totally-ordered command sequence (vector consensus is a batching atomic
broadcast: up to n commands commit per slot).

Multiplexing. All instances share the underlying network: every protocol
message is wrapped in a :class:`SlotEnvelope` and routed to the slot's
own consensus engine, which runs against a *virtual environment* that
tags its traffic and namespaces its timers. Cross-slot replay of signed
messages is impossible because each slot derives its own key authority
(domain separation by slot).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import CertificationAuthority
from repro.core.modules import ModuleConfig
from repro.core.specs import SystemParameters
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.detectors.base import FailureDetector
from repro.detectors.diamond_m import MutenessDetector
from repro.messages.consensus import NULL
from repro.sim.process import Process, ProcessEnv

#: Placeholder proposed when a replica has no pending command for a slot.
NOOP = "<noop>"


@dataclass(frozen=True, slots=True)
class SlotEnvelope:
    """Wire wrapper tagging a consensus message with its log slot."""

    slot: int
    inner: Any


class SlotEnv:
    """A virtual :class:`ProcessEnv` for one slot's consensus engine.

    Delegates to the replica's real environment, wrapping sends in
    :class:`SlotEnvelope` and namespacing timer names so concurrent slots
    cannot collide. Public because :mod:`repro.service` multiplexes its
    pipelined slots through the same mechanism.
    """

    def __init__(self, parent: ProcessEnv, slot: int) -> None:
        self._parent = parent
        self._slot = slot

    @property
    def pid(self) -> int:
        return self._parent.pid

    @property
    def n(self) -> int:
        return self._parent.n

    @property
    def now(self) -> float:
        return self._parent.now

    @property
    def crashed(self) -> bool:
        return self._parent.crashed

    @property
    def scheduler(self):
        return self._parent.scheduler

    @property
    def trace(self):
        return self._parent.trace

    @property
    def rng(self):
        return self._parent.rng

    @property
    def metrics(self):
        # Slot engines share the replica's registry: per-slot counters
        # aggregate under the same (module, pid) keys.
        return self._parent.metrics

    def send(self, dst: int, payload: Any) -> None:
        self._parent.send(dst, SlotEnvelope(slot=self._slot, inner=payload))

    def set_timer(self, owner, name: str, delay: float) -> None:
        # Namespace the timer under the real environment but strip the
        # prefix again when it fires, so the engine sees its own name.
        self._parent.set_timer(
            SlotTimerProxy(owner), f"slot{self._slot}:{name}", delay
        )

    def cancel_timer(self, name: str) -> None:
        self._parent.cancel_timer(f"slot{self._slot}:{name}")


class SlotTimerProxy:
    """Strips the slot prefix off firing timers before reaching the engine."""

    __slots__ = ("_owner",)

    def __init__(self, owner) -> None:
        self._owner = owner

    def on_timer(self, name: str) -> None:
        self._owner.on_timer(name.partition(":")[2])


#: Factory producing the consensus engine for one slot. Signature matches
#: the transformed-system protocol factory, letting attacks be injected
#: per replica.
EngineFactory = Callable[
    [int, Any, SystemParameters, CertificationAuthority, FailureDetector,
     ModuleConfig],
    TransformedConsensusProcess,
]


def default_engine(pid, proposal, params, authority, detector, config):
    """The honest-engine factory: one transformed Figure-3 instance."""
    return TransformedConsensusProcess(
        proposal=proposal,
        params=params,
        authority=authority,
        detector=detector,
        config=config,
    )


#: Backwards-compatible alias (pre-service name).
_default_engine = default_engine


class ReplicatedLogProcess(Process):
    """One replica: a command queue, a growing log, and per-slot engines.

    Args:
        commands: this replica's client commands, proposed one per slot
            (``NOOP`` once exhausted).
        params: system parameters shared by every slot's instance.
        seed: domain-separation seed for the per-slot key authorities
            (must be equal across replicas).
        target_slots: how many slots to decide before going idle.
        engine_factory: consensus-engine constructor — Byzantine replicas
            substitute an attack class here.
    """

    def __init__(
        self,
        commands: list[Any],
        params: SystemParameters,
        seed: int = 0,
        target_slots: int = 1,
        engine_factory: EngineFactory = _default_engine,
        config: ModuleConfig | None = None,
    ) -> None:
        super().__init__()
        self.commands = list(commands)
        self.params = params
        self.seed = seed
        self.target_slots = target_slots
        self.engine_factory = engine_factory
        self.config = config if config is not None else ModuleConfig.full()
        self.log: list[tuple[int, int, Any]] = []  # (slot, proposer, command)
        self.engines: dict[int, TransformedConsensusProcess] = {}
        self._decided: set[int] = set()
        #: Decided-but-not-yet-applied vectors, buffered so the log is
        #: always appended in strict slot order (in-order apply) even when
        #: a later slot's instance decides first.
        self._pending_apply: dict[int, tuple] = {}
        self._next_apply = 0
        self._queue: deque[Any] = deque(commands)
        self._proposed: dict[int, Any] = {}
        self.faulty_union: set[int] = set()

    # -- log surface ----------------------------------------------------------

    @property
    def committed_slots(self) -> int:
        return len(self._decided)

    @property
    def applied_slots(self) -> int:
        """Slots whose commands are in the log (the in-order prefix)."""
        return self._next_apply

    @property
    def finished(self) -> bool:
        return self.committed_slots >= self.target_slots

    def command_log(self) -> list[Any]:
        """The totally-ordered committed commands (noops filtered)."""
        return [command for (_s, _p, command) in self.log if command != NOOP]

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self) -> None:
        self._ensure_engine(0)

    def _proposal_for(self, slot: int) -> Any:
        """Pop the next pending command (at-least-once: commands that lose
        the INIT race of their slot are re-queued by :meth:`_harvest`)."""
        command = self._queue.popleft() if self._queue else NOOP
        self._proposed[slot] = command
        return command

    def _ensure_engine(self, slot: int) -> TransformedConsensusProcess | None:
        if slot in self.engines or slot >= self.target_slots:
            return self.engines.get(slot)
        # Domain separation: every slot derives its own key authority, so
        # a signed message from slot k verifies in no other slot. The
        # derivation is a fixed affine map (not ``hash``) for determinism.
        keys = KeyAuthority(self.n, seed=self.seed * 1_000_003 + slot)
        authority = CertificationAuthority(
            SignatureScheme(keys), keys.signer_for(self.pid)
        )
        detector = MutenessDetector(initial_timeout=10.0)
        engine = self.engine_factory(
            self.pid,
            self._proposal_for(slot),
            self.params,
            authority,
            detector,
            self.config,
        )
        engine.bind(SlotEnv(self.env, slot))  # type: ignore[arg-type]
        self.engines[slot] = engine
        engine.on_start()
        return engine

    # -- message routing ---------------------------------------------------------------

    def on_message(self, src: int, payload: Any) -> None:
        if not isinstance(payload, SlotEnvelope):
            return  # replicas only speak slot-wrapped consensus traffic
        if payload.slot >= self.target_slots or payload.slot < 0:
            return
        engine = self._ensure_engine(payload.slot)
        if engine is None:
            return
        engine.on_message(src, payload.inner)
        self.faulty_union |= engine.faulty
        self._harvest(payload.slot)

    # -- commit path ---------------------------------------------------------------------

    def _harvest(self, slot: int) -> None:
        engine = self.engines.get(slot)
        if engine is None or not engine.decided or slot in self._decided:
            return
        self._decided.add(slot)
        vector = engine.decision
        self._pending_apply[slot] = vector
        # At-least-once: our command missed this slot's vector (it lost
        # the race into the n - F INIT quorum) — propose it again.
        mine = self._proposed.get(slot, NOOP)
        if mine != NOOP and vector[self.pid] == NULL:
            self._queue.appendleft(mine)
        self._apply_ready()
        self._ensure_engine(slot + 1)

    def _apply_ready(self) -> None:
        """Apply buffered decisions in strict slot order.

        A slot decided out of order (slot 2 before slot 1) waits here
        until every earlier slot has decided, so the log — and any state
        machine materialised from it — is identical across replicas
        regardless of the decision schedule.
        """
        while self._next_apply in self._pending_apply:
            slot = self._next_apply
            vector = self._pending_apply.pop(slot)
            for proposer, command in enumerate(vector):
                if command != NULL:
                    self.log.append((slot, proposer, command))
            self.record("commit", slot=slot, vector=vector)
            self._next_apply += 1
