"""Named zoo plan matrices for ``repro campaign zoo`` (docs/ADVERSARIES.md).

* ``smoke`` — one plan per family, the ``make zoo-smoke`` matrix;
* ``extended`` — smoke plus the second target of families (b) and (d);
* ``sweep`` — the ``(F, d)`` compounding matrix of the message
  adversary: process faults (F muted replicas) crossed with the
  per-broadcast suppression bound d, probing where the two bounds
  compound (at n=4, F=1, quorum=3 a receiver can lose the mute plus
  d=2 further inputs — below the quorum — so the corner is expected to
  need the settle horizon's retransmissions to converge);
* ``net-smoke`` — the single family-(a) plan the make target runs at
  fidelity 3 under a hard timeout.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan


def _preset_plans() -> dict[str, tuple[FaultPlan, ...]]:
    smoke = (
        # One 0.5 s suppression round: enough traffic to prove injection
        # (tens of removed deliveries) while the quorum geometry can
        # still absorb d=1 — the engines never retransmit consensus
        # traffic, so longer windows can starve a slot of its quorum at
        # every live replica and wedge the pipeline (see the sweep).
        FaultPlan(
            name="zoo-message-adversary",
            seed=21,
            requests=18,
            duration=12.0,
            suppressions=((1, 0.5, 2.0, 2.5),),
        ),
        FaultPlan(
            name="zoo-transient-store",
            seed=22,
            requests=18,
            duration=12.0,
            corruptions=((2, 4.0, "store"),),
        ),
        # The attacker is only interesting when quorum-critical: mute a
        # second replica so every quorum must include the slow peer.
        FaultPlan(
            name="zoo-timing-burst",
            seed=23,
            requests=18,
            duration=14.0,
            mutes=((1, 2.0),),
            timing=((3, 3.0, 9.0, 3.0),),
        ),
        FaultPlan(
            name="zoo-storage-flip-log",
            seed=24,
            requests=18,
            duration=12.0,
            kills=((2, 2.0, 6.0),),
            storage_flips=((0, 3.0, "log"),),
        ),
    )
    extended = smoke + (
        FaultPlan(
            name="zoo-transient-detector",
            seed=25,
            requests=18,
            duration=12.0,
            corruptions=((1, 4.0, "detector"),),
        ),
        FaultPlan(
            name="zoo-storage-flip-checkpoint",
            seed=26,
            requests=18,
            duration=12.0,
            kills=((2, 2.0, 6.0),),
            storage_flips=((0, 3.0, "checkpoint"),),
        ),
    )
    # The (F, d) corner cells compound past what quorum geometry absorbs:
    # with n=4 (quorum 3) a mute spends the whole F budget, and a
    # sustained d-per-round suppression of unretransmitted consensus
    # traffic can leave every live replica short of some round's quorum —
    # a permanently undecided slot, so progress legitimately fails. Those
    # cells are declared vulnerable; the benign corner keeps the short
    # window the smoke plan survives.
    sweep = tuple(
        FaultPlan(
            name=f"zoo-fd-F{f_count}-d{d}",
            seed=30 + 2 * f_count + d,
            requests=18,
            duration=12.0,
            mutes=((1, 3.0),) if f_count else (),
            suppressions=(
                ((d, 0.5, 2.0, 2.5),)
                if (f_count, d) == (0, 1)
                else ((d, 0.25, 2.0, 4.0),)
            ),
            expect="pass" if (f_count, d) == (0, 1) else "vulnerable",
        )
        for f_count in (0, 1)
        for d in (1, 2)
    )
    return {
        "smoke": smoke,
        "extended": extended,
        "sweep": sweep,
        "net-smoke": smoke[:1],
    }


#: Named plan matrices for the CLI and the make targets.
ZOO_PRESETS = _preset_plans()
