"""Shared runner wiring for the adversary zoo.

The three fidelity runners schedule the same zoo injections against
different substrates (a simulated world's scheduler, the loopback twin's
manual scheduler, a subprocess replica's wall scheduler). This module
holds the pieces they share: which :class:`~repro.service.config.ServiceConfig`
knobs a zoo plan flips on, and the :class:`ZooInjections` ledger of what
was actually injected — all derived purely from the plan, so every
fidelity arms the exact same adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.plan import FaultPlan
from repro.observability.registry import MODULE_ZOO, MetricsRegistry
from repro.zoo.corruption import (
    StorageFault,
    corrupt_live_state,
    corruption_rng,
)
from repro.zoo.families import FAMILY_STATE_CORRUPTION, FAMILY_STORAGE_FLIP


def zoo_service_overrides(plan: FaultPlan) -> dict[str, Any]:
    """ServiceConfig fields a zoo plan turns on (empty for v1 plans).

    Transient-corruption plans arm the self-stabilizing heal; timing
    plans arm the adaptive muteness estimator the attack targets.
    Storage-flip plans whose stuck bit sits in the *log* (and not the
    checkpoint snapshot) push checkpoints out of the run entirely, so
    every served state transfer carries a log suffix for the fault to
    hit — with a tight cadence the suffix is empty whenever a transfer
    lands just after a checkpoint, and the injection oracle would flake.
    """
    overrides: dict[str, Any] = {}
    if plan.corruptions:
        overrides["heal_on_mismatch"] = True
    if plan.timing:
        overrides["muteness_detector"] = "adaptive"
    flip_targets = {target for _pid, _at, target in plan.storage_flips}
    if flip_targets and "checkpoint" not in flip_targets:
        overrides["checkpoint_interval"] = 64
    return overrides


def zoo_loopback_overrides(plan: FaultPlan) -> dict[str, Any]:
    """The loopback/net variant: also tighten the checkpoint cadence.

    The loopback genesis checkpoints every 4 applied slots of batches of
    8 — too sparse for a corruption injected mid-window to meet a
    certified quorum before the settle budget. Corruption and
    checkpoint-flip plans shrink both knobs (cluster-wide: the
    checkpoint schedule must agree across replicas); log-only flip
    plans keep the loose interval chosen above. The sim config already
    runs at this cadence.
    """
    overrides = zoo_service_overrides(plan)
    if plan.corruptions or plan.storage_flips:
        overrides.setdefault("checkpoint_interval", 1)
        overrides["batch_size"] = 2
    return overrides


@dataclass(slots=True)
class ZooInjections:
    """What the zoo actually did in one run (one per runner)."""

    #: Live-state scribbles performed (family b).
    corruptions: int = 0
    #: Installed sticky storage faults (family d), one per clause.
    storage_faults: list[StorageFault] = field(default_factory=list)

    @property
    def storage_flips_injected(self) -> int:
        return sum(fault.injected for fault in self.storage_faults)


def install_zoo_injections(
    plan: FaultPlan,
    schedule: Callable[[float, str, Callable[[], None]], Any],
    replica: Callable[[int], Any],
    injections: ZooInjections,
    metrics: MetricsRegistry,
    pids: frozenset[int] | None = None,
) -> None:
    """Schedule families (b) and (d) against one runner's substrate.

    ``schedule(at, label, thunk)`` books a callback at plan-time ``at``
    on the runner's clock (the caller owns the time-scale mapping);
    ``replica(pid)`` resolves the live :class:`ServiceReplicaProcess`
    hosting ``pid`` at fire time, or ``None`` when that replica is not
    hosted here. ``pids`` restricts the clauses to the locally-hosted
    replicas (the subprocess fidelity hosts exactly one).
    """
    for pid, at, target in plan.corruptions:
        if pids is not None and pid not in pids:
            continue

        def corrupt(pid: int = pid, target: str = target) -> None:
            process = replica(pid)
            if process is None:
                return
            rng = corruption_rng(plan, FAMILY_STATE_CORRUPTION, pid)
            corrupt_live_state(process, target, rng)
            injections.corruptions += 1
            metrics.inc(MODULE_ZOO, "corruptions_injected", pid=pid)

        schedule(at, "zoo-corrupt", corrupt)
    for pid, at, target in plan.storage_flips:
        if pids is not None and pid not in pids:
            continue
        fault = StorageFault(
            (target,),
            corruption_rng(plan, FAMILY_STORAGE_FLIP, pid),
            metrics=metrics.scope(MODULE_ZOO, pid),
        )
        injections.storage_faults.append(fault)

        def install(pid: int = pid, fault: StorageFault = fault) -> None:
            process = replica(pid)
            if process is not None:
                process.storage_fault = fault

        schedule(at, "zoo-storage-fault", install)
