"""Family (c): the clock/timing attack.

A Byzantine peer does not lie about content — it lies about *time*:
within the attack window it releases outbound traffic only at
``gap``-second burst boundaries. Correct peers coupled to it through
quorums see inter-arrival gaps far above what the Jacobson-style
:class:`~repro.detectors.diamond_m.AdaptiveMutenessDetector` trained on,
so the estimator wrongfully suspects *correct* replicas. The attribution
oracle then checks the blame never escapes the muteness module — no
correct process may *declare* a correct process faulty over it.

:func:`burst_hold` is a pure function of (clauses, now, src): the
injectors at every fidelity share it, so the shaped schedule is
deterministic and independent of delivery order.
"""

from __future__ import annotations

from collections.abc import Iterable

#: Release jitter below this is treated as already on a burst boundary
#: (floating-point guard; plan times are coarse next to it).
_EPSILON = 1e-9

#: Minimum spacing (plan seconds) between two shaped releases on the
#: same directed link. The attacker is *slow*, not misbehaving: its
#: stream must stay FIFO through substrates that add per-message latency
#: jitter after the hold (the sim's uniform [0.5, 1.5] transfer delay is
#: 1.0 virtual units of spread = 0.04 plan seconds at scale 25; the
#: loopback twin adds none). Releasing two held messages closer than the
#: jitter would let the later one overtake — and Figure 4's monitor
#: automaton, which assumes FIFO channels, would then brand the
#: honest-but-late sender faulty and reject its quorum traffic forever.
BURST_FIFO_SPACING = 0.05


def burst_hold(
    timing: Iterable[tuple[int, float, float, float]], src: int, now: float
) -> float:
    """Extra delay the attacker ``src`` puts on a message sent at ``now``.

    Zero outside every window (and for non-attackers); inside a window,
    the time remaining until the next ``gap``-boundary after ``start`` —
    never more than ``gap``.
    """
    hold = 0.0
    for pid, start, end, gap in timing:
        if pid != src or not start <= now < end:
            continue
        phase = (now - start) % gap
        if phase > _EPSILON:
            hold = max(hold, gap - phase)
    return hold


class BurstShaper:
    """FIFO-preserving burst shaping for one injector instance.

    Wraps the pure :func:`burst_hold` with per-directed-link release
    bookkeeping: each shaped message is released at least
    :data:`BURST_FIFO_SPACING` after the previous one on the same link,
    so the substrate's post-hold latency jitter cannot reorder the
    attacker's stream. Messages sent after the window drain through the
    same spacing until the backlog clears, then shaping stops entirely.
    Deterministic — no randomness, state is a pure function of the send
    history, and links never share state.
    """

    def __init__(
        self,
        timing: Iterable[tuple[int, float, float, float]],
        spacing: float = BURST_FIFO_SPACING,
    ) -> None:
        self._timing = tuple(timing)
        self._spacing = spacing
        self._last_release: dict[tuple[int, int], float] = {}

    def hold(self, src: int, dst: int, now: float) -> float:
        """Extra delay for a ``src -> dst`` message sent at ``now``."""
        release = now + burst_hold(self._timing, src, now)
        key = (src, dst)
        last = self._last_release.get(key)
        if last is not None and release < last + self._spacing:
            release = last + self._spacing
        if release > now:
            self._last_release[key] = release
            return release - now
        return 0.0
