"""The adversary-family registry: one row per zoo family.

Each entry records which :class:`~repro.faults.plan.FaultPlan` field
carries the family's clauses, which Figure-1 module must detect (or must
*not* be fooled by) the family, and the fidelities the family executes
at. The campaign judge and the docs both read this table — it is the
single place the detection-attribution contract is written down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlan
from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_MUTENESS,
    MODULE_SIGNATURE,
)

#: Family names, in registry order.
FAMILY_MESSAGE_ADVERSARY = "message-adversary"
FAMILY_STATE_CORRUPTION = "state-corruption"
FAMILY_TIMING_ATTACK = "timing-attack"
FAMILY_STORAGE_FLIP = "storage-flip"


@dataclass(frozen=True, slots=True)
class AdversaryFamily:
    """One zoo family and its detection-attribution contract."""

    name: str
    #: The :class:`FaultPlan` field holding this family's clauses.
    field: str
    #: Figure-1 modules that must catch the family (empty: the family is
    #: pure omission — *no* module may blame a correct process for it).
    detected_by: tuple[str, ...]
    #: Fidelities the family executes at.
    fidelities: tuple[str, ...]
    description: str


ZOO_FAMILIES: dict[str, AdversaryFamily] = {
    family.name: family
    for family in (
        AdversaryFamily(
            name=FAMILY_MESSAGE_ADVERSARY,
            field="suppressions",
            detected_by=(),
            fidelities=("sim", "loopback", "net"),
            description=(
                "Seeded per-round suppressor removing up to d deliveries "
                "of each broadcast, independent of process faults "
                "(Albouy/Frey/Raynal/Taïani). Pure omission: correct "
                "senders must never be convicted for it."
            ),
        ),
        AdversaryFamily(
            name=FAMILY_STATE_CORRUPTION,
            field="corruptions",
            detected_by=(MODULE_CERTIFICATION,),
            fidelities=("sim", "loopback", "net"),
            description=(
                "Transient arbitrary bytes in live store/detector state "
                "(Duvignau/Raynal/Schiller); the certified-checkpoint "
                "quorum exposes the divergence and the replica must "
                "self-stabilize back to a legal state."
            ),
        ),
        AdversaryFamily(
            name=FAMILY_TIMING_ATTACK,
            field="timing",
            detected_by=(MODULE_MUTENESS,),
            fidelities=("sim", "loopback"),
            description=(
                "A Byzantine peer releases traffic only at gap-second "
                "burst boundaries, driving the Jacobson-style adaptive "
                "muteness estimator into wrongful suspicion of correct "
                "peers; the blame must stay inside the muteness module."
            ),
        ),
        AdversaryFamily(
            name=FAMILY_STORAGE_FLIP,
            field="storage_flips",
            detected_by=(MODULE_SIGNATURE, MODULE_CERTIFICATION),
            fidelities=("sim", "loopback", "net"),
            description=(
                "Stuck-bit corruption of at-rest log entries / checkpoint "
                "snapshots (Barbieri et al.); requesting replicas must "
                "reject the corrupted transfer state cheaply via the "
                "signature and certification modules."
            ),
        ),
    )
}


def families_in(plan: FaultPlan) -> tuple[str, ...]:
    """The zoo families a plan exercises, in registry order."""
    return tuple(
        name
        for name, family in ZOO_FAMILIES.items()
        if getattr(plan, family.field)
    )
