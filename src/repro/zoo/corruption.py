"""Families (b) and (d): transient live-state and at-rest corruption.

Family (b) scribbles seeded garbage over a *correct* replica's live
state at one instant — the replicated store (its digest then diverges
from the certified quorum, which the certification module must expose)
or its muteness detectors (hair-trigger timeouts, which the estimator
must back off from on its own). The fault is transient: the replica is
expected to re-converge, and :func:`repro.zoo.oracles.reconvergence_verdict`
judges whether it did.

Family (d) models the Barbieri et al. hardware fault: a **stuck bit**
in the storage medium. A :class:`StorageFault` installed on a replica
corrupts every piece of at-rest state it serves from then on — decided
log entries (``suffix``) or the checkpoint snapshot — so whenever a
catching-up peer pulls state, the signature + certification re-checks on
the *requesting* side must reject the corrupted payload.

All garbage is derived by pure seed forks (:func:`corruption_rng`), so
injection is deterministic and independent of event order.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.faults.plan import FaultPlan
from repro.sim.rng import SeededRng


def corruption_rng(plan: FaultPlan, family: str, pid: int) -> SeededRng:
    """The seeded garbage stream for one (family, replica) injection."""
    return SeededRng(plan.seed, f"zoo-{plan.plan_id}").fork(f"{family}-{pid}")


def corrupt_live_state(process: Any, target: str, rng: SeededRng) -> dict:
    """Scribble garbage into a live replica ``target``; returns details.

    ``process`` is a :class:`~repro.service.replica.ServiceReplicaProcess`;
    the writes deliberately bypass its command interface (this models
    memory corruption, not an API call).
    """
    if target == "store":
        key = f"zoo-corrupt-{rng.randint(0, 0xFFFF):04x}"
        value = f"{rng.randint(0, 0xFFFFFFFF):08x}"
        process.store._data[key] = value  # memory scribble, not a command
        return {"target": target, "key": key}
    if target == "detector":
        scrambled = 0
        for engine in process.engines.values():
            detector = getattr(engine, "detector", None)
            if detector is None:
                continue
            garbage = rng.uniform(1e-4, 1e-2)
            for attr in ("_timeout", "_srtt", "_rttvar"):
                table = getattr(detector, attr, None)
                if isinstance(table, dict):
                    for pid in list(table):
                        table[pid] = garbage
            scrambled += 1
        return {"target": target, "detectors": scrambled}
    raise ValueError(f"unknown live-corruption target {target!r}")


class StorageFault:
    """Sticky at-rest corruption of the state a replica serves.

    Installed on a replica at the clause's ``at`` time; from then on
    every :class:`~repro.service.messages.StateResponse` it sends passes
    through :meth:`corrupt_response`, which flips the configured
    targets. ``injected`` counts actual corruptions (a response with
    nothing to corrupt passes through unchanged and uncounted).
    """

    def __init__(
        self, targets: tuple[str, ...], rng: SeededRng, metrics: Any = None
    ) -> None:
        self.targets = frozenset(targets)
        #: Fixed garbage marker: sticky storage returns the *same* wrong
        #: bits on every read, like a stuck cell — and keeps responses
        #: deterministic.
        self._marker = f"zoo-flip-{rng.randint(0, 0xFFFF):04x}"
        self._metrics = metrics
        self.injected = 0

    def _count(self) -> None:
        self.injected += 1
        if self._metrics is not None:
            self._metrics.inc("storage_flips_injected")

    def corrupt_response(self, response: Any) -> Any:
        """Apply the stuck bits to an outgoing ``StateResponse``."""
        if "checkpoint" in self.targets and response.count > 0 and (
            response.snapshot
        ):
            key, value = response.snapshot[0]
            if value != self._marker:
                response = replace(
                    response,
                    snapshot=((key, self._marker),) + response.snapshot[1:],
                )
                self._count()
        if "log" in self.targets and response.suffix:
            slot, vector, justification = response.suffix[-1]
            if (
                isinstance(vector, tuple)
                and vector
                and vector[-1] != self._marker
            ):
                corrupted = vector[:-1] + (self._marker,)
                response = replace(
                    response,
                    suffix=response.suffix[:-1]
                    + ((slot, corrupted, justification),),
                )
                self._count()
        return response
