"""``repro.zoo`` — the adversary zoo (docs/ADVERSARIES.md).

Composable adversary families from the related work, each a first-class
:class:`~repro.faults.plan.FaultPlan` extension (schema
``repro.faults/v2``) executing across the three campaign fidelities:

* **message adversary** — seeded per-round suppression of up to ``d``
  deliveries of each broadcast, independent of process faults
  (Albouy/Frey/Raynal/Taïani);
* **transient state corruption** — arbitrary bytes scribbled into live
  detector/store state, judged by a self-stabilizing re-convergence
  oracle (Duvignau/Raynal/Schiller);
* **clock/timing attack** — a Byzantine peer shaping inter-arrival gaps
  against the adaptive muteness estimator;
* **stored-state bit-flips** — stuck bits in at-rest log entries and
  checkpoint snapshots (the Barbieri et al. hardware model), caught by
  the signature + certification modules.

The registry (:data:`~repro.zoo.families.ZOO_FAMILIES`) names, for each
family, the Figure-1 module that must detect it — the campaign judge
(:func:`repro.faults.oracle.judge`) enforces exactly that attribution.
"""

from repro.zoo.corruption import (
    StorageFault,
    corrupt_live_state,
    corruption_rng,
)
from repro.zoo.families import AdversaryFamily, ZOO_FAMILIES, families_in
from repro.zoo.oracles import judge_zoo, reconvergence_verdict
from repro.zoo.presets import ZOO_PRESETS
from repro.zoo.suppressor import RoundSuppressor
from repro.zoo.timing import BURST_FIFO_SPACING, BurstShaper, burst_hold

__all__ = [
    "AdversaryFamily",
    "BURST_FIFO_SPACING",
    "BurstShaper",
    "RoundSuppressor",
    "StorageFault",
    "ZOO_FAMILIES",
    "ZOO_PRESETS",
    "burst_hold",
    "corrupt_live_state",
    "corruption_rng",
    "families_in",
    "judge_zoo",
    "reconvergence_verdict",
]
