"""Per-family detection-attribution oracles for the adversary zoo.

:func:`judge_zoo` extends the cross-fidelity judge
(:func:`repro.faults.oracle.judge`) for plans carrying zoo clauses. Each
family's oracle checks three things in the same vocabulary as the PR-8
flip oracle: the adversary actually *ran* (injection counters), the
right Figure-1 module *caught* it (detection), and no other module got
*blamed* for it (attribution). Family (b) additionally computes the
self-stabilization verdict — ``recovered`` / ``stuck`` / ``diverged`` —
and stores it in ``observation.zoo["reconvergence"]`` so it lands in the
report.

The runners populate ``observation.zoo`` with the raw facts::

    suppressed                deliveries removed by the message adversary
    corruptions_injected      live-state scribbles performed
    checkpoint_mismatches     certified-quorum digest mismatches observed
    timing_delays             messages the timing attacker burst-shaped
    wrongful_suspicions       muteness suspicions of processes that spoke
    storage_flips_injected    at-rest flips served to catching-up peers
    storage_rejections        corrupted transfer state rejected by the
                              requesting side (signature + certification)

Detection counters are asserted at the deterministic fidelities; at the
net fidelity, response ordering can mask a rejection (an already-covered
slot is skipped unverified), so there only injection and the base
progress/convergence oracles are required — mirroring the fidelity-3
fallback the flip oracle already uses.
"""

from __future__ import annotations

from typing import Any

from repro.campaign.oracles import classify_fault_reason
from repro.faults.plan import FIDELITY_NET, FaultPlan

#: Self-stabilization verdicts of the re-convergence oracle.
RECOVERED = "recovered"
STUCK = "stuck"
DIVERGED = "diverged"


def _innocent_convictions(
    plan: FaultPlan, observation: Any
) -> list[tuple[int, int, str]]:
    """Declarations by correct observers against *correct* processes.

    Flip senders are excluded — the flip oracle owns their attribution
    story (they are corrupted on the wire, not by the zoo).
    """
    guilty = plan.faulty_pids | plan.flip_pids
    return sorted(
        {
            (observer, target, classify_fault_reason(reason).value)
            for observer, target, reason in observation.declared
            if target not in guilty
        }
    )


def reconvergence_verdict(
    plan: FaultPlan, observation: Any, live: frozenset[int]
) -> str:
    """The self-stabilization verdict for a transient-corruption plan.

    ``diverged`` — the live correct replicas did not end on one digest
    (the corruption leaked into the replicated state); ``stuck`` — the
    digests agree but progress stalled below the plan's floor;
    ``recovered`` — the system returned to a legal state within the
    settle horizon.
    """
    digests = {
        observation.digests[pid] for pid in live if pid in observation.digests
    }
    if len(digests) != 1 or any(
        pid not in observation.digests for pid in live
    ):
        return DIVERGED
    floor = plan.progress_floor
    if observation.completed < plan.requests or any(
        observation.committed.get(pid, 0) < floor for pid in live
    ):
        return STUCK
    return RECOVERED


def judge_zoo(
    plan: FaultPlan, observation: Any, live: frozenset[int]
) -> list[str]:
    """Apply every applicable family oracle; return the violations."""
    violations: list[str] = []
    zoo = observation.zoo
    deterministic = observation.fidelity != FIDELITY_NET

    # Family (a): the message adversary. Pure omission — it must run,
    # and no module may convict a correct process over missing traffic.
    if plan.suppressions:
        if zoo.get("suppressed", 0) < 1:
            violations.append(
                "injection: the plan schedules a message adversary but no "
                "delivery was suppressed"
            )
        convicted = _innocent_convictions(plan, observation)
        if convicted:
            violations.append(
                "attribution: pure omission convicted correct process(es): "
                f"{convicted}"
            )

    # Family (b): transient state corruption + the re-convergence oracle.
    if plan.corruptions:
        if zoo.get("corruptions_injected", 0) < 1:
            violations.append(
                "injection: the plan schedules state corruption but none "
                "was injected"
            )
        if (
            deterministic
            and any(target == "store" for _p, _a, target in plan.corruptions)
            and zoo.get("checkpoint_mismatches", 0) < 1
        ):
            violations.append(
                "detection: store corruption never surfaced as a certified "
                "checkpoint-digest mismatch (certification module)"
            )
        verdict = reconvergence_verdict(plan, observation, live)
        zoo["reconvergence"] = verdict
        if verdict != RECOVERED:
            violations.append(
                f"reconvergence: transient corruption left the system "
                f"{verdict} (self-stabilization oracle)"
            )

    # Family (c): the timing attack. The adaptive estimator may suspect
    # wrongfully (that is the attack working) but the blame must never
    # escape the muteness module as a declaration against a correct peer.
    if plan.timing:
        if zoo.get("timing_delays", 0) < 1:
            violations.append(
                "injection: the plan schedules a timing attack but no "
                "message was burst-shaped"
            )
        elif deterministic and zoo.get("wrongful_suspicions", 0) < 1:
            violations.append(
                "engagement: the timing attack never drove the muteness "
                "estimator into a wrongful suspicion"
            )
        escaped = _innocent_convictions(plan, observation)
        if escaped:
            violations.append(
                "attribution: timing-attack blame escaped the muteness "
                f"module as declaration(s): {escaped}"
            )

    # Family (d): at-rest storage flips, caught by the requesting side.
    if plan.storage_flips:
        if zoo.get("storage_flips_injected", 0) < 1:
            violations.append(
                "injection: the plan schedules storage flips but no served "
                "state was corrupted (did any peer transfer?)"
            )
        elif deterministic and zoo.get("storage_rejections", 0) < 1:
            violations.append(
                "detection: corrupted at-rest state was never rejected by "
                "the signature/certification re-checks"
            )

    return violations
