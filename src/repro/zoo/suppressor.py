"""Family (a): the round-based message adversary.

Within each suppression window, plan time is cut into rounds of
``round_length`` seconds; per (sender, round) the adversary picks a
seeded set of exactly ``d`` destinations whose deliveries from that
sender silently vanish. The pick is a **pure fork derivation** off the
plan seed (:meth:`repro.sim.rng.SeededRng.fork`): the set for
``(clause, src, round)`` depends only on those coordinates, never on
query order or on what other links consumed — the determinism and
independence contract the hypothesis suite pins.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.sim.rng import SeededRng


class RoundSuppressor:
    """Deterministic per-round delivery suppression for one plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._root = SeededRng(plan.seed, f"zoo-{plan.plan_id}")
        self._sets: dict[tuple[int, int, int], frozenset[int]] = {}

    def suppression_set(
        self, clause: int, src: int, round_index: int
    ) -> frozenset[int]:
        """The destinations ``src`` cannot reach in ``round_index``."""
        key = (clause, src, round_index)
        cached = self._sets.get(key)
        if cached is None:
            d = self._plan.suppressions[clause][0]
            rng = self._root.fork(f"suppress-{clause}-{src}-{round_index}")
            candidates = [
                pid for pid in range(self._plan.n_replicas) if pid != src
            ]
            cached = frozenset(rng.sample(candidates, min(d, len(candidates))))
            self._sets[key] = cached
        return cached

    def suppressed(self, now: float, src: int, dst: int) -> bool:
        """True when the adversary removes the ``src → dst`` delivery."""
        if src == dst:
            return False
        for clause, (_d, round_length, start, end) in enumerate(
            self._plan.suppressions
        ):
            if not start <= now < end:
                continue
            round_index = int((now - start) // round_length)
            if dst in self.suppression_set(clause, src, round_index):
                return True
        return False
