"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets ``python setup.py develop`` provide the same editable
install; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
