"""E7 — the cost of the transformation (the Figure 1 pipeline).

Same workload (one consensus, failure-free and with one crash), crash
protocol vs transformed protocol: messages, wire bytes, certificate
sizes, rounds, latency. The paper's mechanism predicts a constant-factor
message overhead and a large certificate-byte overhead (certificates
carry n - F signed messages each, nested one level for relays/decides).
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import (
    check_crash_consensus,
    check_vector_consensus,
)
from repro.analysis.reporting import print_table
from repro.systems import build_crash_system, build_transformed_system

from conftest import SEEDS, export_artifact, metrics_dir, proposals, run_once


def summarise(name, summary, max_cert):
    return [
        name,
        summary.mean_messages,
        summary.mean_bytes,
        max_cert,
        summary.mean_rounds,
        summary.mean_decision_time,
    ]


def run_experiment():
    rows = []
    for n in (4, 7):
        for scenario, crash in (("failure-free", {}), ("one crash", {0: 0.0})):
            crash_summary = run_trials(
                builder=lambda seed, c=crash: build_crash_system(
                    proposals(n), crash_at=c, seed=seed
                ),
                checker=check_crash_consensus,
                seeds=SEEDS,
            )
            transformed_summary = run_trials(
                builder=lambda seed, c=crash: build_transformed_system(
                    proposals(n), crash_at=c, seed=seed
                ),
                checker=check_vector_consensus,
                seeds=SEEDS,
            )
            crash_cert = max(
                t.metrics.max_certificate_entries for t in crash_summary.trials
            )
            transformed_cert = max(
                t.metrics.max_certificate_entries
                for t in transformed_summary.trials
            )
            rows.append(
                [f"n={n} {scenario}"]
                + summarise("crash", crash_summary, crash_cert)[1:]
            )
            rows.append(
                [f"n={n} {scenario} (transformed)"]
                + summarise("transformed", transformed_summary, transformed_cert)[1:]
            )
            rows.append(
                [
                    "  overhead x",
                    _ratio(transformed_summary.mean_messages,
                           crash_summary.mean_messages),
                    _ratio(transformed_summary.mean_bytes,
                           crash_summary.mean_bytes),
                    None,
                    None,
                    None,
                ]
            )
            if metrics_dir() is not None:
                # Matching artifacts for both sides of the comparison.
                slug = scenario.replace(" ", "-")
                for label, builder in (
                    ("crash", build_crash_system),
                    ("transformed", build_transformed_system),
                ):
                    witness = builder(proposals(n), crash_at=crash, seed=0)
                    witness.run()
                    export_artifact(
                        witness,
                        f"e7-{label}-n{n}-{slug}",
                        experiment="e7",
                        protocol=label,
                        scenario=scenario,
                        n=n,
                        seed=0,
                    )
    return rows


def _ratio(a, b):
    if a is None or b is None or b == 0:
        return None
    return a / b


def test_e7_transformation_overhead(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E7 - cost of the transformation ({len(SEEDS)} seeds/row)",
        ["config", "msgs", "bytes", "max cert", "rounds", "latency"],
        rows,
    )
    overhead_rows = [r for r in rows if r[0] == "  overhead x"]
    for row in overhead_rows:
        # Shape: the message overhead is a small constant factor...
        assert 1.0 <= row[1] < 6.0, row
        # ...while the byte overhead is markedly larger (certificates of
        # n - F signed messages dominate every vote).
        assert row[2] > 2.0, row
        assert row[2] > row[1], row
