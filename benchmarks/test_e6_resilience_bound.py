"""E6 — the resilience bound F <= min(⌊(n-1)/2⌋, C).

Sweep the *actual* number of Byzantine processes f across the paper's
bound (with n = 7, C = F = 2): inside the bound every property holds in
every run; pushing f past the bound (while the protocol still assumes
F = 2) makes the guarantees crumble — the cliff the bound predicts.

Beyond-bound systems keep the claimed deployment (F = 2 quorums) and are
simply handed more attacker seats than it tolerates
(``allow_excess_faults=True``).
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attacks_at
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import proposals, run_once

N = 7
BOUND = 2  # min(floor(6/2), floor(6/3)) = 2
SEEDS = range(15)

#: Attacks assigned to successive seats as f grows. Mute attackers are
#: the strongest *beyond-bound* liveness threat (they starve quorums).
ATTACK_SEQUENCE = ["corrupt-vector", "mute", "mute"]


def run_experiment():
    rows = []
    for actual_f in range(0, BOUND + 2):
        attackers = {
            N - 1 - i: ATTACK_SEQUENCE[i] for i in range(actual_f)
        }
        summary = run_trials(
            builder=lambda seed, a=attackers: build_transformed_system(
                proposals(N),
                byzantine=transformed_attacks_at(a),
                f=BOUND,
                seed=seed,
                delay_model=UniformDelay(0.1, 2.0),
                allow_excess_faults=True,
            ),
            checker=check_vector_consensus,
            seeds=SEEDS,
            max_events=150_000,
            max_time=400.0,
        )
        rows.append(
            [
                actual_f,
                "inside" if actual_f <= BOUND else "BEYOND",
                percent(summary.termination_rate),
                percent(summary.agreement_rate),
                percent(summary.validity_rate),
                percent(summary.all_hold_rate),
            ]
        )
    return rows


def test_e6_resilience_cliff_at_the_bound(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E6 - sweeping actual faults across the bound "
        f"(n={N}, claimed F={BOUND}, {len(SEEDS)} seeds/row)",
        ["actual f", "regime", "term", "agree", "valid", "all hold"],
        rows,
    )
    # Shape: perfect inside the bound.
    for row in rows[: BOUND + 1]:
        assert row[5] == "100%", row
    # Shape: a cliff right past it.
    assert rows[BOUND + 1][5] != "100%", rows[BOUND + 1]
