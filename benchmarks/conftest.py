"""Shared configuration for the experiment benchmarks.

Each benchmark file regenerates one paper artefact (see DESIGN.md §3 and
EXPERIMENTS.md). The pytest-benchmark timer wraps the whole experiment
(`rounds=1`): the quantity of interest is the printed table, not the
harness runtime; assertions pin the *shape* the paper claims.
"""

from __future__ import annotations

import os
from pathlib import Path

SEEDS = range(25)  # per-cell trials: deterministic, cheap, statistically steady


def proposals(n: int) -> list[str]:
    return [f"v{i}" for i in range(n)]


def run_once(benchmark, experiment):
    """Run ``experiment`` exactly once under the benchmark timer."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)


def metrics_dir() -> Path | None:
    """The JSONL artifact drop directory, or None when exporting is off."""
    directory = os.environ.get("REPRO_METRICS_DIR")
    return Path(directory) if directory else None


def export_artifact(system, name: str, **meta) -> Path | None:
    """Dump a run's observability artifact if ``REPRO_METRICS_DIR`` is set.

    Benchmarks call this after a representative run so experiments can
    leave comparable JSONL artifacts (schema in docs/OBSERVABILITY.md)
    next to their printed tables::

        REPRO_METRICS_DIR=out pytest benchmarks/test_e3_transformed_protocol.py

    Without the environment variable this is a no-op, keeping default
    benchmark runs artifact-free.
    """
    target_dir = metrics_dir()
    if target_dir is None:
        return None
    from repro.observability.export import write_run_jsonl

    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"{name}.jsonl"
    write_run_jsonl(target, system.world.trace, system.world.metrics, meta=meta)
    return target
