"""Shared configuration for the experiment benchmarks.

Each benchmark file regenerates one paper artefact (see DESIGN.md §3 and
EXPERIMENTS.md). The pytest-benchmark timer wraps the whole experiment
(`rounds=1`): the quantity of interest is the printed table, not the
harness runtime; assertions pin the *shape* the paper claims.
"""

from __future__ import annotations

SEEDS = range(25)  # per-cell trials: deterministic, cheap, statistically steady


def proposals(n: int) -> list[str]:
    return [f"v{i}" for i in range(n)]


def run_once(benchmark, experiment):
    """Run ``experiment`` exactly once under the benchmark timer."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)
