"""E13 (design ablation) — certificate pruning keeps history polynomial.

DESIGN.md §5 records the central engineering decision of this
reproduction: signatures cover ``(body, digest(cert))`` so embedded
messages can travel with their certificate pruned to its digest. Without
pruning, a round-``r`` NEXT certificate materialises the full
``NEXT(r-1) ⊃ NEXT(r-2) ⊃ ...`` history and its wire size grows
exponentially in the round number; with pruning it stays flat.

This ablation constructs the two encodings for rounds 1..6 and measures
the exact canonical wire bytes of one NEXT message per round.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.metrics import payload_bytes
from repro.analysis.reporting import print_table
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE
from repro.messages.consensus import VNext

from conftest import run_once

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.helpers import SignedWorkbench  # noqa: E402

N = 4
ROUNDS = 6


def build_round_next(bench: SignedWorkbench, rounds: int, pruned: bool):
    """A round-``rounds`` NEXT whose certificate chains back to round 1."""
    previous: list = []
    for round_number in range(1, rounds + 1):
        cert = (
            Certificate(tuple(previous))
            if previous
            else EMPTY_CERTIFICATE
        )
        level = []
        for pid in range(bench.quorum):
            message = bench.authorities[pid].make(
                VNext(sender=pid, round=round_number), cert
            )
            level.append(message.light() if pruned else message)
        previous = level
    return previous[0]


def run_experiment():
    bench = SignedWorkbench(N)
    rows = []
    for rounds in range(1, ROUNDS + 1):
        pruned = payload_bytes(build_round_next(bench, rounds, pruned=True))
        unpruned = payload_bytes(build_round_next(bench, rounds, pruned=False))
        rows.append([rounds, pruned, unpruned, unpruned / pruned])
    return rows


def test_e13_pruning_keeps_certificates_flat(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E13 - wire bytes of one NEXT by round: pruned vs unpruned (n={N})",
        ["round", "pruned bytes", "unpruned bytes", "blow-up x"],
        rows,
    )
    # Shape: pruned size is flat in the round number...
    assert rows[-1][1] <= rows[1][1] * 1.5
    # ...while the unpruned size grows geometrically (factor ~ n - F per
    # round) and is already orders of magnitude worse by round 6.
    assert rows[-1][2] > rows[-2][2] * 2
    assert rows[-1][3] > 100


def test_e13_protocol_embeds_nexts_pruned(benchmark):
    """The live protocol really does use the pruned embedding."""

    def check():
        from repro.systems import build_transformed_system

        system = build_transformed_system(
            [f"v{i}" for i in range(4)], crash_at={0: 0.0}, seed=1
        )
        system.run(max_time=2_000)
        flat = []
        for process in system.processes:
            if process.pid == 0 or not process.decided:
                continue
            flat.append(
                all(not entry.has_full_cert
                    for entry in process.next_cert.of_type(VNext))
            )
        return flat

    flat = run_once(benchmark, check)
    assert flat and all(flat)
