"""E15 (genericity) — the methodology applied to a second protocol.

The paper's title says "towards a *modular approach*": the contribution
is the transformation recipe, not the one transformed protocol. This
experiment substantiates the claim by running the same evaluation over
two independent applications of the recipe — transformed Hurfin–Raynal
(Figure 3) and transformed Chandra–Toueg
(:mod:`repro.consensus.transformed_ct`) — under equivalent fault
scenarios, and comparing their guarantees and costs.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attack
from repro.byzantine.ct_attacks import ct_attack
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import proposals, run_once

N = 4
SEEDS = range(20)

#: Equivalent fault scenarios for the two transformed protocols.
SCENARIOS = [
    ("failure-free", None, None),
    ("crashed coordinator", "crash", "crash"),
    ("mute attacker", ("mute", 3), ("ct-mute", 3)),
    ("corrupt values (coord seat)", ("corrupt-vector", 0), ("ct-corrupt-estimate", 3)),
    ("forged decision", ("forged-decide", 3), ("ct-premature-decide", 3)),
]


def build(base: str, spec, seed: int):
    kwargs = dict(base=base, seed=seed, delay_model=UniformDelay(0.1, 2.0))
    if spec == "crash":
        kwargs["crash_at"] = {0: 0.0}
    elif spec is not None:
        name, seat = spec
        maker = transformed_attack if base == "hurfin-raynal" else ct_attack
        kwargs["byzantine"] = maker(seat, name)
    return build_transformed_system(proposals(N), **kwargs)


def run_experiment():
    rows = []
    for label, hr_spec, ct_spec in SCENARIOS:
        for base, spec in (("hurfin-raynal", hr_spec), ("chandra-toueg", ct_spec)):
            summary = run_trials(
                builder=lambda seed, b=base, s=spec: build(b, s, seed),
                checker=check_vector_consensus,
                seeds=SEEDS,
                max_time=2_000.0,
            )
            rows.append(
                [
                    label,
                    base,
                    percent(summary.all_hold_rate),
                    summary.mean_rounds,
                    summary.mean_messages,
                    summary.mean_decision_time,
                ]
            )
    return rows


def test_e15_methodology_genericity(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E15 - the recipe applied twice: transformed HR vs transformed CT "
        f"(n={N}, F=1, {len(SEEDS)} seeds/row)",
        ["scenario", "base protocol", "all hold", "rounds", "msgs", "latency"],
        rows,
    )
    # Shape: both transformed protocols keep every property in every
    # scenario — the methodology, not the particular protocol, carries
    # the guarantee.
    for row in rows:
        assert row[2] == "100%", row
    # Shape: CT's extra phase costs messages/latency in the happy path.
    hr_free = next(r for r in rows if r[0] == "failure-free" and r[1] == "hurfin-raynal")
    ct_free = next(r for r in rows if r[0] == "failure-free" and r[1] == "chandra-toueg")
    assert ct_free[4] > hr_free[4]
