"""E18 (application) — BFT state-machine replication over the protocol.

The paper motivates consensus as the foundation of fault-tolerant
services; this experiment measures the service built on the transformed
protocol in :mod:`repro.replication`: a replicated log committing client
commands slot by slot (one Vector Consensus instance per slot,
slot-separated signature domains).

Reported per configuration: log convergence (identical command sequences
at all correct replicas), committed commands, virtual-time throughput
and per-command message cost — failure-free vs a crashed replica vs a
value-corrupting Byzantine replica.
"""

from __future__ import annotations

from repro.analysis.reporting import percent, print_table
from repro.byzantine.transformed_attacks import TCorruptVectorAttacker
from repro.replication import Command, build_replicated_system, materialise
from repro.sim.network import UniformDelay

from conftest import run_once

N = 4
SLOTS = 4
SEEDS = range(10)


def workloads():
    return [
        [Command("set", f"k{pid}-{slot}", slot) for slot in range(SLOTS)]
        for pid in range(N)
    ]


def corrupt_engine(pid, proposal, params, authority, detector, config):
    return TCorruptVectorAttacker(
        proposal=proposal, params=params, authority=authority,
        detector=detector, config=config,
    )


def run_cell(label, crash_at=None, byzantine=None):
    converged = 0
    commands = 0.0
    duration = 0.0
    messages = 0.0
    stores_identical = 0
    for seed in SEEDS:
        system = build_replicated_system(
            workloads(),
            target_slots=SLOTS,
            seed=seed,
            byzantine=byzantine,
            delay_model=UniformDelay(0.1, 1.5),
        )
        if crash_at:
            for pid, time in crash_at.items():
                system.world.crash_at(pid, time)
            system.byzantine_pids = frozenset(crash_at) | system.byzantine_pids
        result = system.run(max_time=4_000.0)
        if system.converged():
            converged += 1
        logs = system.correct_logs()
        commands += len(logs[0])
        duration += result.end_time
        messages += system.world.network.messages_sent
        stores = {tuple(sorted(materialise(log).items())) for log in logs}
        if len(stores) == 1:
            stores_identical += 1
    count = len(SEEDS)
    return [
        label,
        percent(converged / count),
        percent(stores_identical / count),
        commands / count,
        duration / count,
        (messages / count) / max(commands / count, 1.0),
    ]


def run_experiment():
    return [
        run_cell("failure-free"),
        run_cell("one crashed replica", crash_at={1: 2.0}),
        run_cell("one corrupting replica", byzantine={3: corrupt_engine}),
    ]


def test_e18_replicated_log(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E18 - BFT replicated log over the transformed protocol "
        f"(n={N}, {SLOTS} slots, {len(SEEDS)} seeds/row)",
        ["configuration", "logs converge", "stores identical",
         "commands", "virtual time", "msgs/command"],
        rows,
    )
    # Shape: full convergence in every configuration.
    for row in rows:
        assert row[1] == "100%", row
        assert row[2] == "100%", row
    # Shape: a corrupting replica cannot reduce committed throughput to
    # zero (its slots still commit the correct replicas' commands).
    assert rows[2][3] > 0
