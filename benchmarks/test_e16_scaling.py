"""E16 (scaling) — cost curves of the transformation in the system size.

Failure-free runs at n = 4, 7, 10, 13 for the crash-model baseline and
the two transformed protocols: messages grow ~n² for all three (the
protocols are all-to-all), while the transformed protocols' *bytes* grow
an order faster (certificates carry n−F signed messages, each O(n)), so
the byte overhead factor itself widens with n — the scaling consequence
of the paper's certificate mechanism.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import (
    check_crash_consensus,
    check_vector_consensus,
)
from repro.analysis.reporting import print_table
from repro.systems import build_crash_system, build_transformed_system

from conftest import proposals, run_once

SIZES = (4, 7, 10, 13)
SEEDS = range(8)


def run_experiment():
    rows = []
    factors = {}
    for n in SIZES:
        crash = run_trials(
            builder=lambda seed, k=n: build_crash_system(proposals(k), seed=seed),
            checker=check_crash_consensus,
            seeds=SEEDS,
        )
        hr = run_trials(
            builder=lambda seed, k=n: build_transformed_system(
                proposals(k), seed=seed
            ),
            checker=check_vector_consensus,
            seeds=SEEDS,
        )
        ct = run_trials(
            builder=lambda seed, k=n: build_transformed_system(
                proposals(k), base="chandra-toueg", seed=seed
            ),
            checker=check_vector_consensus,
            seeds=SEEDS,
        )
        for label, summary in (("crash HR", crash), ("transf. HR", hr),
                               ("transf. CT", ct)):
            rows.append(
                [
                    n,
                    label,
                    summary.all_hold_rate == 1.0,
                    summary.mean_messages,
                    (summary.mean_bytes or 0.0) / 1024.0,
                    summary.mean_decision_time,
                ]
            )
        factors[n] = (hr.mean_bytes or 0.0) / (crash.mean_bytes or 1.0)
    return rows, factors


def test_e16_cost_scaling(benchmark):
    rows, factors = run_once(benchmark, run_experiment)
    print_table(
        f"E16 - failure-free cost vs system size ({len(SEEDS)} seeds/cell)",
        ["n", "protocol", "all hold", "msgs", "kBytes", "latency"],
        rows,
    )
    print(
        "byte overhead factor (transformed HR / crash HR): "
        + ", ".join(f"n={n}: {factor:.0f}x" for n, factor in factors.items())
    )
    # Shape: correctness at every size.
    assert all(row[2] for row in rows)
    # Shape: the byte overhead factor widens with n (certificates are
    # O(n) signed messages each, themselves O(n)).
    values = [factors[n] for n in SIZES]
    assert values == sorted(values), values
    assert values[-1] > 2 * values[0]