"""E19 (application) — replicated-service throughput and commit latency.

E18 measured the bare replicated log; this experiment measures the full
service runtime in :mod:`repro.service` — open-loop clients feeding a
batched, pipelined, checkpointing replica group — across (batch size x
pipelining window) configurations. Reported per configuration:
virtual-time throughput, p50/p99 client-observed commit latency, mean
batch occupancy and certified checkpoints.

Besides the printed table the experiment exports ``BENCH_service.json``
(repo root): the same numbers as a machine-readable artifact,
byte-identical across runs of a fixed seed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.reporting import print_table
from repro.analysis.stats import percentile
from repro.observability.registry import MODULE_SERVICE
from repro.service import ServiceConfig, build_service_system

from conftest import run_once

ARTIFACT = Path("BENCH_service.json")

SEED = 19
N_CLIENTS = 3
REQUESTS = 30
RATE = 4.0

#: The (batch size, pipelining window) grid under measurement.
CONFIGS = ((1, 1), (4, 2), (8, 4))


def run_cell(batch_size: int, window: int) -> dict:
    config = ServiceConfig(
        n_clients=N_CLIENTS,
        requests_per_client=REQUESTS,
        rate=RATE,
        batch_size=batch_size,
        window=window,
        checkpoint_interval=2,
        seed=SEED,
    )
    system = build_service_system(config)
    result = system.run(max_time=2_500.0)
    latencies = system.client_latencies()
    occupancy = [
        (count, total)
        for (module, name, _pid, _round), (count, total, _low, _high)
        in system.world.metrics.iter_histograms()
        if module == MODULE_SERVICE and name == "batch_occupancy"
    ]
    batches = sum(count for count, _ in occupancy)
    batched = sum(total for _, total in occupancy)
    committed = system.committed_commands()
    return {
        "batch_size": batch_size,
        "window": window,
        "committed_commands": committed,
        "completed_requests": system.completed_requests(),
        "virtual_time": round(result.end_time, 9),
        "throughput": round(committed / result.end_time, 9),
        "latency_p50": round(percentile(latencies, 50.0), 9),
        "latency_p99": round(percentile(latencies, 99.0), 9),
        "mean_batch_occupancy": round(batched / batches, 9) if batches else 0.0,
        "certified_checkpoints": system.certified_checkpoints(),
        "messages_sent": system.world.network.messages_sent,
        "all_clients_done": system.all_clients_done(),
        "checkpoints_agree": system.checkpoints_agree(),
    }


def run_cells():
    return [run_cell(batch_size, window) for batch_size, window in CONFIGS]


def _rows(cells):
    return [
        [
            cell["batch_size"],
            cell["window"],
            cell["committed_commands"],
            round(cell["virtual_time"], 2),
            round(cell["throughput"], 3),
            round(cell["latency_p50"], 2),
            round(cell["latency_p99"], 2),
            round(cell["mean_batch_occupancy"], 2),
            cell["certified_checkpoints"],
        ]
        for cell in cells
    ]


def run_experiment():
    """Table rows for ``python -m repro experiments --only e19``."""
    return _rows(run_cells())


def test_e19_service_throughput(benchmark):
    cells = run_once(benchmark, run_cells)
    print_table(
        f"E19 - replicated-service throughput (n=4, {N_CLIENTS} clients x "
        f"{REQUESTS} requests, rate {RATE}, seed {SEED})",
        ["batch", "window", "commands", "virtual time", "throughput",
         "p50", "p99", "batch occupancy", "checkpoints"],
        _rows(cells),
    )
    artifact = {
        "experiment": "e19_service_throughput",
        "seed": SEED,
        "n_replicas": 4,
        "n_clients": N_CLIENTS,
        "requests_per_client": REQUESTS,
        "rate": RATE,
        "configurations": cells,
    }
    ARTIFACT.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Shape: every configuration commits the full workload, converges,
    # and certifies checkpoints.
    for cell in cells:
        assert cell["all_clients_done"], cell
        assert cell["checkpoints_agree"], cell
        assert cell["committed_commands"] == N_CLIENTS * REQUESTS
        assert cell["certified_checkpoints"] >= 3
        assert cell["latency_p50"] <= cell["latency_p99"]
    # Shape: batching amortises consensus — bigger batches pack more
    # commands per slot.
    assert cells[-1]["mean_batch_occupancy"] > cells[0]["mean_batch_occupancy"]
    # Shape: the artifact is deterministic — a second run of one cell
    # reproduces it bit for bit.
    assert run_cell(*CONFIGS[0]) == cells[0]
