"""Performance microbenchmarks of the substrate itself.

Unlike E1..E16 (which regenerate paper artefacts), these time the
building blocks with pytest-benchmark's real statistics: simulator event
throughput, signing/verification, certificate construction and the
certificate analyser. Useful for keeping the harness fast enough that
the hypothesis batteries and seed sweeps stay cheap.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.consensus.certification import (
    current_message_problems,
    decide_message_problems,
)
from repro.core.certificates import Certificate
from repro.messages.consensus import VCurrent
from repro.sim.scheduler import Scheduler
from repro.systems import build_transformed_system

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.helpers import SignedWorkbench  # noqa: E402


def test_scheduler_event_throughput(benchmark):
    def run_10k_events():
        scheduler = Scheduler(seed=0)
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                scheduler.schedule_after(0.001, "tick", tick)

        scheduler.schedule_at(0.0, "tick", tick)
        scheduler.run()
        return scheduler.events_dispatched

    dispatched = benchmark(run_10k_events)
    assert dispatched == 10_000


def test_sign_and_verify(benchmark):
    bench = SignedWorkbench(7)

    def sign_verify():
        message = bench.signed_init(0)
        assert bench.verify(message)
        return message

    benchmark(sign_verify)


def test_coordinator_current_construction(benchmark):
    bench = SignedWorkbench(7)
    inits = bench.init_quorum()
    vector = bench.vector_for(list(range(bench.quorum)))

    def build():
        return bench.authorities[0].make(
            VCurrent(sender=0, round=1, est_vect=vector),
            Certificate(tuple(inits)),
        )

    message = benchmark(build)
    assert message.has_full_cert


def test_current_predicate_throughput(benchmark):
    bench = SignedWorkbench(7)
    message = bench.coordinator_current()

    def analyse():
        return current_message_problems(message, bench.params, bench.verify)

    assert benchmark(analyse) == []


def test_decide_predicate_throughput(benchmark):
    bench = SignedWorkbench(7)
    coordinator_msg = bench.coordinator_current()
    relays = [
        bench.relay_current(pid, coordinator_msg)
        for pid in range(1, bench.quorum)
    ]
    from repro.messages.consensus import VDecide

    decide = bench.authorities[1].make(
        VDecide(sender=1, est_vect=coordinator_msg.body.est_vect),
        Certificate((coordinator_msg, *relays)),
    )

    def analyse():
        return decide_message_problems(decide, bench.params, bench.verify)

    assert benchmark(analyse) == []


def test_full_consensus_run_throughput(benchmark):
    counter = [0]

    def one_run():
        counter[0] += 1
        system = build_transformed_system(
            [f"v{i}" for i in range(4)], seed=counter[0]
        )
        system.run()
        return system

    system = benchmark(one_run)
    assert system.all_correct_decided()
