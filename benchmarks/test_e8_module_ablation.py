"""E8 — modularity ablation: each module is load-bearing.

The paper's claim is that *each type of failure is encapsulated in a
specific module*. We make the claim falsifiable: disable one module at a
time and rerun the attack that module is responsible for. With the full
configuration every attack is contained; with its module ablated, the
matching attack slips through (safety or liveness is lost, or the fault
goes undetected).
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attack
from repro.core.modules import ModuleConfig
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import proposals, run_once

N = 4
SEEDS = range(15)

#: module -> the attack that module is responsible for containing.
RESPONSIBILITY = {
    "signature": ("impersonation", 3),
    "certification": ("corrupt-vector", 0),
    "monitor": ("premature-decide", 3),
    "muteness": ("mute", 0),  # mute *coordinator*: liveness is at stake
}


def run_cell(module: str | None, attack: str, seat: int):
    config = ModuleConfig.full() if module is None else ModuleConfig.full().without(module)
    return run_trials(
        builder=lambda seed: build_transformed_system(
            proposals(N),
            byzantine=transformed_attack(seat, attack),
            config=config,
            seed=seed,
            delay_model=UniformDelay(0.1, 2.0),
        ),
        checker=check_vector_consensus,
        seeds=SEEDS,
        max_events=120_000,
        max_time=300.0,
    )


def run_experiment():
    rows = []
    for module, (attack, seat) in RESPONSIBILITY.items():
        full = run_cell(None, attack, seat)
        ablated = run_cell(module, attack, seat)
        rows.append(
            [
                module,
                attack,
                percent(full.all_hold_rate),
                percent(full.detection_by_any_rate),
                percent(ablated.all_hold_rate),
                percent(ablated.detection_by_any_rate),
            ]
        )
    return rows


def test_e8_each_module_is_load_bearing(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E8 - module ablation (n={N}, {len(SEEDS)} seeds/cell)",
        [
            "ablated module",
            "attack",
            "full: all hold",
            "full: detected",
            "ablated: all hold",
            "ablated: detected",
        ],
        rows,
    )
    by_module = {row[0]: row for row in rows}
    # Shape: the full configuration contains every attack.
    for row in rows:
        assert row[2] == "100%", row
    # Shape: ablating a module loses either the guarantee or detection
    # for exactly the attack it owns.
    assert by_module["signature"][4] != "100%" or by_module["signature"][5] == "0%"
    assert by_module["certification"][4] != "100%" or (
        by_module["certification"][5] == "0%"
    )
    assert by_module["muteness"][4] != "100%"  # mute coordinator stalls
    assert by_module["monitor"][5] == "0%"  # nothing left to detect with
