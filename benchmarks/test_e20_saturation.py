"""E20 (performance) — saturation sweep and the cached-verification delta.

Three measurements, one artifact (``BENCH_saturation.json``, repo root;
methodology in docs/PERFORMANCE.md):

1. **Saturation sweep** (simulator, deterministic): open-loop client
   populations from tens to hundreds crossed with (batch size x
   pipelining window) shapes up to batch 256. The sweep exposes the
   *knee*: at small batches, doubling the offered load past ~100 clients
   buys almost no throughput (consensus slots are the bottleneck), while
   large batches keep scaling near-linearly over the same range.

2. **Before/after delta** (wall clock): one certificate-heavy
   configuration run twice — once with every verification cache and
   encoding memo disabled (:func:`repro.crypto.cache.caching_disabled`,
   the honest pre-cache baseline) and once with them on. Both runs
   commit the identical command sequence; only the wall clock moves.
   The acceptance bar is a >= 2x speedup.

3. **TCP wall-clock variant**: a 4-replica cluster of real OS processes
   (:mod:`repro.net.cluster`) absorbing an open-loop client workload
   over sockets, timed end to end. Replica-side JSONL artifacts are
   read back to confirm the caches and the binary wire codec (v2
   frames) were exercised by real traffic.

Wall-clock fields are marked as such in the artifact and excluded from
determinism claims; everything else is byte-stable at fixed seed
(`make perf-smoke` pins exactly that).
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.analysis.reporting import print_table
from repro.crypto.cache import caching_disabled
from repro.net.client import NetClient
from repro.net.cluster import LocalCluster, make_genesis, wait_cluster_ready
from repro.observability.export import read_run_jsonl
from repro.observability.registry import (
    MODULE_CERTIFICATION,
    MODULE_NET,
    MODULE_SERVICE,
    MODULE_SIGNATURE,
)
from repro.service import ServiceConfig, build_service_system

from conftest import run_once

ARTIFACT = Path("BENCH_saturation.json")

SEED = 20
REQUESTS = 4
RATE = 8.0

#: Open-loop client populations: tens -> hundreds.
CLIENTS = (16, 48, 96, 192)
#: (batch size, pipelining window) shapes, up to the batch-256 ceiling.
SHAPES = ((8, 2), (64, 4), (256, 8))

#: The certificate-heavy configuration for the before/after delta:
#: small batches + a short checkpoint interval maximise certified
#: messages per committed command, which is exactly the traffic the
#: verification caches target.
DELTA_CONFIG = dict(
    n_clients=8,
    requests_per_client=20,
    rate=8.0,
    batch_size=8,
    window=4,
    checkpoint_interval=4,
    seed=3,
)

TCP_REQUESTS = 120
TCP_CONCURRENCY = 12


def run_cell(clients: int, batch_size: int, window: int) -> dict:
    """One deterministic sweep cell (virtual-time throughput + counters)."""
    config = ServiceConfig(
        n_clients=clients,
        requests_per_client=REQUESTS,
        rate=RATE,
        batch_size=batch_size,
        window=window,
        checkpoint_interval=8,
        seed=SEED,
    )
    system = build_service_system(config)
    result = system.run(max_time=10_000.0)
    metrics = system.world.metrics
    committed = system.committed_commands()
    return {
        "clients": clients,
        "batch_size": batch_size,
        "window": window,
        "offered_load": round(clients * RATE, 9),
        "committed_commands": committed,
        "virtual_time": round(result.end_time, 9),
        "throughput": round(committed / result.end_time, 9),
        "sig_cache_hits": metrics.counter_total(MODULE_SIGNATURE, "sig_cache_hits"),
        "sig_cache_misses": metrics.counter_total(
            MODULE_SIGNATURE, "sig_cache_misses"
        ),
        "pf_cache_hits": metrics.counter_total(
            MODULE_CERTIFICATION, "pf_cache_hits"
        ),
        "ckpt_cert_cache_hits": metrics.counter_total(
            MODULE_SERVICE, "ckpt_cert_cache_hits"
        ),
        "all_clients_done": system.all_clients_done(),
        "checkpoints_agree": system.checkpoints_agree(),
    }


def run_sweep() -> list[dict]:
    return [
        run_cell(clients, batch_size, window)
        for batch_size, window in SHAPES
        for clients in CLIENTS
    ]


def _delta_run() -> tuple[float, int]:
    """One timed run of the certificate-heavy config: (wall s, committed)."""
    config = ServiceConfig(**DELTA_CONFIG)
    system = build_service_system(config)
    start = time.perf_counter()
    system.run(max_time=2_500.0)
    wall = time.perf_counter() - start
    return wall, system.committed_commands()


def run_delta() -> dict:
    """Before/after wall clock on identical committed work."""
    with caching_disabled():
        before_wall, before_committed = _delta_run()
    after_wall, after_committed = _delta_run()
    return {
        "config": dict(DELTA_CONFIG),
        "committed_commands": after_committed,
        "identical_commits": before_committed == after_committed,
        # Wall-clock values: machine-dependent, excluded from determinism.
        "wall_seconds_before": round(before_wall, 4),
        "wall_seconds_after": round(after_wall, 4),
        "speedup": round(before_wall / after_wall, 4),
    }


async def _tcp_workload() -> dict:
    """Open-loop client workload against real replica subprocesses."""
    genesis = make_genesis(4, seed=SEED, name="e20")
    with tempfile.TemporaryDirectory(prefix="repro-e20-") as workdir:
        cluster = LocalCluster(genesis, workdir)
        client = NetClient(genesis, 0)
        try:
            cluster.start_all()
            await wait_cluster_ready(client, timeout=30.0)
            start = time.perf_counter()
            await client.workload(
                TCP_REQUESTS, concurrency=TCP_CONCURRENCY, tag="e20"
            )
            wall = time.perf_counter() - start
            committed = client.sets_completed
        finally:
            await client.close()
            cluster.terminate_all()
        sig_hits = frames_v2 = 0
        for path in sorted(Path(workdir, "metrics").glob("node-*.jsonl")):
            run = read_run_jsonl(path)
            sig_hits += run.metrics.counter_total(
                MODULE_SIGNATURE, "sig_cache_hits"
            )
            frames_v2 += run.metrics.counter_total(MODULE_NET, "frames_v2")
    return {
        "replicas": 4,
        "requests": TCP_REQUESTS,
        "concurrency": TCP_CONCURRENCY,
        "committed": committed,
        # Wall-clock values: machine-dependent, excluded from determinism.
        "wall_seconds": round(wall, 4),
        "ops_per_second": round(committed / wall, 4),
        "replica_sig_cache_hits": sig_hits,
        "replica_frames_v2": frames_v2,
    }


def run_tcp() -> dict:
    return asyncio.run(_tcp_workload())


def _rows(cells):
    return [
        [
            cell["clients"],
            cell["batch_size"],
            cell["window"],
            cell["committed_commands"],
            round(cell["virtual_time"], 2),
            round(cell["throughput"], 3),
            cell["sig_cache_hits"],
            cell["pf_cache_hits"],
        ]
        for cell in cells
    ]


def run_experiment():
    """Table rows for ``python -m repro experiments --only e20``.

    Simulator sweep only: the CLI path stays subprocess-free; the
    wall-clock delta and the TCP variant run under pytest.
    """
    return _rows(run_sweep())


def _throughput(cells, clients, batch_size):
    for cell in cells:
        if cell["clients"] == clients and cell["batch_size"] == batch_size:
            return cell["throughput"]
    raise AssertionError((clients, batch_size))


def test_e20_saturation(benchmark):
    def experiment():
        return {"sweep": run_sweep(), "delta": run_delta(), "tcp": run_tcp()}

    results = run_once(benchmark, experiment)
    cells = results["sweep"]
    print_table(
        f"E20 - saturation sweep (n=4, {REQUESTS} reqs/client, rate {RATE}, "
        f"seed {SEED})",
        ["clients", "batch", "window", "commands", "virtual time",
         "throughput", "sig hits", "pf hits"],
        _rows(cells),
    )
    delta = results["delta"]
    tcp = results["tcp"]
    print(
        f"delta: {delta['wall_seconds_before']:.2f}s -> "
        f"{delta['wall_seconds_after']:.2f}s "
        f"(speedup {delta['speedup']:.1f}x on "
        f"{delta['committed_commands']} identical commands)"
    )
    print(
        f"tcp: {tcp['committed']} commits in {tcp['wall_seconds']:.2f}s "
        f"({tcp['ops_per_second']:.0f} ops/s, "
        f"{tcp['replica_frames_v2']} v2 frames, "
        f"{tcp['replica_sig_cache_hits']} replica cache hits)"
    )
    ARTIFACT.write_text(
        json.dumps(
            {
                "experiment": "e20_saturation",
                "seed": SEED,
                "n_replicas": 4,
                "requests_per_client": REQUESTS,
                "rate": RATE,
                "sweep": cells,
                "delta": delta,
                "tcp": tcp,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    # Shape: every cell converges and commits its full open-loop load.
    for cell in cells:
        assert cell["all_clients_done"], cell
        assert cell["checkpoints_agree"], cell
        assert cell["committed_commands"] == cell["clients"] * REQUESTS
        assert cell["sig_cache_hits"] > cell["sig_cache_misses"], cell
    # Shape: the knee — at batch 8 the last doubling of offered load
    # (96 -> 192 clients) yields < 1.6x throughput (saturated), while at
    # batch 64 the same doubling still yields > 1.5x (still scaling).
    assert _throughput(cells, 192, 8) / _throughput(cells, 96, 8) < 1.6
    assert _throughput(cells, 192, 64) / _throughput(cells, 96, 64) > 1.5
    # Shape: batching raises the saturation ceiling.
    assert _throughput(cells, 192, 256) > 2 * _throughput(cells, 192, 8)
    # Acceptance bar: caches buy >= 2x on the certificate-heavy config,
    # with byte-identical committed work on both sides.
    assert delta["identical_commits"], delta
    assert delta["speedup"] >= 2.0, delta
    # The TCP path really pushed v2 frames through real sockets and the
    # replicas really hit their verification caches.
    assert tcp["committed"] >= TCP_REQUESTS
    assert tcp["replica_frames_v2"] > 0
    assert tcp["replica_sig_cache_hits"] > 0
