"""E14 (assumption check) — the FIFO channel assumption is load-bearing.

The paper adapts Hurfin–Raynal to FIFO channels, remarking only that
"this simplifies the solution when addressing arbitrary failures". This
experiment shows the assumption is *necessary* already in the crash
model: the protocol's agreement rests on the fact that any process
advancing to round r+1 has, by FIFO, already received a round-r CURRENT
from some change-of-mind voter (the decide/advance majorities intersect)
and therefore adopted the potentially-decided value.

We construct the violating schedule explicitly (n = 5, no process is
faulty — only unlucky suspicions and message timing):

* round 1: p0 proposes ``v0``; p2 and p3 relay; p1 and p4 wrongly
  suspect p0 and vote NEXT; p3 changes its mind and votes NEXT too;
* p2 collects three CURRENTs and **decides v0**; every DECIDE is slow;
* crucially, p3's NEXT *overtakes* p3's earlier CURRENT on the channel
  to p1 (possible only without FIFO), and every other round-1 CURRENT
  towards p1 is slow — so p1 advances to round 2 having seen **no**
  round-1 CURRENT, still holding its own ``v1``;
* round 2: p1 coordinates, p3/p4 adopt and relay ``v1``, and p1, p3,
  p4 **decide v1** — Agreement is violated.

Re-running the *identical* script over FIFO channels restores safety:
p3's CURRENT is forced ahead of its NEXT, p1 adopts ``v0`` before
advancing, and round 2 re-proposes ``v0``.
"""

from __future__ import annotations

from repro.analysis.properties import check_crash_consensus
from repro.analysis.reporting import print_table
from repro.consensus.hurfin_raynal import HurfinRaynalProcess
from repro.detectors.oracles import ScriptedDetector
from repro.messages.consensus import Current, Decide
from repro.sim.network import ScriptedDelay
from repro.sim.world import World
from repro.systems import ConsensusSystem

from conftest import run_once

N = 5
SLOW = 200.0
FAST = 0.2


def adversarial_delay_model() -> ScriptedDelay:
    return ScriptedDelay(
        rules=[
            # Every DECIDE crawls: the v0 decisions must not rescue anyone.
            (lambda s, d, p: isinstance(p, Decide), SLOW),
            # No round-1 CURRENT may reach p1 in time...
            (
                lambda s, d, p: isinstance(p, Current)
                and p.round == 1
                and d == 1,
                SLOW,
            ),
            # ...and p3 / p4 are starved of their third round-1 CURRENT,
            # so they cannot decide v0 and follow p1 into round 2.
            (
                lambda s, d, p: isinstance(p, Current)
                and p.round == 1
                and (s, d) in {(2, 3), (2, 4), (3, 4)},
                SLOW,
            ),
            # Meanwhile p3's NEXT (sent *after* its CURRENT) rushes to p1 —
            # the overtake only a non-FIFO channel can deliver.
            (lambda s, d, p: s == 3 and d == 1, FAST),
        ],
        default=1.0,
    )


def suspicion_script(pid: int) -> list[tuple[int, float, float]]:
    # p1 and p4 wrongly suspect the round-1 coordinator for a while.
    if pid in (1, 4):
        return [(0, 0.0, 10.0)]
    return []


def run_scenario(fifo: bool) -> ConsensusSystem:
    processes = [
        HurfinRaynalProcess(
            proposal=f"v{pid}",
            detector=ScriptedDetector(suspicion_script(pid)),
            suspicion_poll=0.1,
        )
        for pid in range(N)
    ]
    world = World(
        processes,
        seed=0,
        delay_model=adversarial_delay_model(),
        fifo=fifo,
    )
    system = ConsensusSystem(world=world, processes=processes)
    system.run(max_events=100_000, max_time=1_000.0)
    return system


def run_experiment():
    rows = []
    outcomes = {}
    for fifo in (False, True):
        system = run_scenario(fifo)
        report = check_crash_consensus(system)
        decisions = sorted(
            {repr(p.decision) for p in system.processes if p.decided}
        )
        outcomes[fifo] = report
        rows.append(
            [
                "FIFO" if fifo else "non-FIFO",
                report.agreement,
                report.validity,
                report.termination,
                ", ".join(decisions),
            ]
        )
    return rows, outcomes


def test_e14_fifo_is_load_bearing(benchmark):
    rows, outcomes = run_once(benchmark, run_experiment)
    print_table(
        "E14 - the same adversarial schedule with and without FIFO channels "
        f"(n={N}, crash model, zero faulty processes)",
        ["channels", "agreement", "validity", "termination", "decisions"],
        rows,
    )
    # Shape: without FIFO the schedule splits the decision...
    assert not outcomes[False].agreement
    # ...and with FIFO the identical schedule is harmless.
    assert outcomes[True].agreement, outcomes[True].violations
    assert outcomes[True].validity
