"""E17 (coordinated adversary) — amplified equivocation by F colluders.

The single-attacker galleries (E3/E4) model independent faults; this
experiment gives the adversary its full power — F = 2 coordinated
corruptions with shared state — and runs the strongest attack that power
enables: a coordinator that certifies two different vectors plus an
accomplice that amplifies whichever branch each victim lacks.

The quorum arithmetic (two same-vector (n−F)-quorums would need more
once-relaying correct processes than exist) defeats the attack; the
table quantifies it: zero safety violations, both colluders convicted by
every correct process, at the cost of ~one extra round.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attacks_at
from repro.byzantine.collusion import make_colluding_equivocators
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import proposals, run_once

N = 7
SEEDS = range(20)


def run_cell(label, byzantine_factory):
    summary = run_trials(
        builder=lambda seed: build_transformed_system(
            proposals(N),
            byzantine=byzantine_factory(),  # fresh shared brain per trial
            seed=seed,
            delay_model=UniformDelay(0.1, 2.0),
        ),
        checker=check_vector_consensus,
        seeds=SEEDS,
        max_time=2_000.0,
    )
    return [
        label,
        percent(summary.all_hold_rate),
        percent(summary.detection_by_all_rate),
        percent(summary.false_positive_rate),
        summary.mean_rounds,
        summary.mean_messages,
    ]


def run_experiment():
    return [
        run_cell("no faults", dict),
        run_cell(
            "2 independent attackers",
            lambda: transformed_attacks_at(
                {0: "equivocate-current", 6: "corrupt-vector"}
            ),
        ),
        run_cell(
            "2 colluding equivocators",
            lambda: make_colluding_equivocators(N),
        ),
    ]


def test_e17_collusion_is_contained(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E17 - coordinated adversary at full power (n={N}, F=2, "
        f"{len(SEEDS)} seeds/row)",
        ["adversary", "all hold", "all convicted", "false pos.", "rounds", "msgs"],
        rows,
    )
    for row in rows:
        assert row[1] == "100%", row
        assert row[3] == "0%", row
    # Shape: the colluding pair is always fully convicted (both branches
    # demonstrably cross at every correct process via the amplifier).
    assert rows[2][2] == "100%"
    # Shape: collusion costs rounds relative to the fault-free baseline.
    assert rows[2][4] > rows[0][4]
