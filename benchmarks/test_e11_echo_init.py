"""E11 (extension) — reliable-broadcast INIT phase vs INIT equivocation.

The paper's vector certification leaves a consistency gap: an INIT
equivocator can make correct processes hold *different* (individually
well-witnessed) values for its slot. This extension routes the INIT
phase through Byzantine reliable broadcast and measures the gap closing:

* slot divergence (two correct processes holding different non-null
  values for the attacker's slot): frequent under plain INIT, zero under
  echo-INIT (Bracha's echo quorums intersect);
* cost: the RB phase adds ~O(n^2) small control messages.
"""

from __future__ import annotations

from repro.analysis.metrics import measure
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attack
from repro.byzantine.echo_attacks import echo_equivocation_attack
from repro.messages.consensus import NULL
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import SEEDS, proposals, run_once

N = 4
ATTACKER = 3


def slot_diverged(system) -> bool:
    values = {
        event.detail["vector"][ATTACKER]
        for event in system.world.trace.of_kind("vector-built")
        if event.process in system.correct_pids
    }
    values.discard(NULL)
    return len(values) > 1


def run_cell(variant: str):
    diverged = 0
    all_hold = 0
    messages = 0.0
    for seed in SEEDS:
        if variant == "echo-init":
            byzantine = echo_equivocation_attack(ATTACKER)
        else:
            byzantine = transformed_attack(ATTACKER, "equivocate-init")
        system = build_transformed_system(
            proposals(N),
            variant=variant,
            byzantine=byzantine,
            seed=seed,
            delay_model=UniformDelay(0.1, 2.0),
        )
        system.run(max_time=1_000)
        if slot_diverged(system):
            diverged += 1
        if check_vector_consensus(system).all_hold:
            all_hold += 1
        messages += measure(system).messages_sent
    count = len(SEEDS)
    return [
        variant,
        percent(diverged / count),
        percent(all_hold / count),
        messages / count,
    ]


def run_experiment():
    return [run_cell("standard"), run_cell("echo-init")]


def test_e11_echo_init_closes_the_divergence_gap(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E11 - INIT equivocation: plain vs reliable-broadcast INIT "
        f"(n={N}, {len(SEEDS)} seeds/row)",
        ["variant", "slot divergence", "all hold", "msgs"],
        rows,
    )
    standard, echo = rows
    # Shape: the gap exists under the published protocol...
    assert standard[1] != "0%"
    # ...and closes completely under echo-INIT...
    assert echo[1] == "0%"
    # ...with both variants keeping the consensus properties, and the
    # echo variant paying extra control messages.
    assert standard[2] == echo[2] == "100%"
    assert echo[3] > standard[3]
