"""E5 — Propositions 1 and 2: certified initial vectors.

Proposition 1: eventually every correct process builds a vector
``est_vect_i`` with its own value at position i, collected values or null
elsewhere, and an ``est_cert_i`` well-formed with respect to it.

Proposition 2: no process can build two *different* certified vectors —
operationally, (a) any falsified entry is detected by the certificate
analyser, and (b) any two certified vectors agree on every entry they
both witness (signed INITs pin the values).
"""

from __future__ import annotations

import random

from repro.analysis.reporting import percent, print_table
from repro.core.vector_certification import (
    CertifiedVectorBuilder,
    certified_vector_problems,
    vectors_compatible,
)
from repro.messages.consensus import NULL
from repro.systems import build_transformed_system

from conftest import SEEDS, proposals, run_once

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.helpers import SignedWorkbench  # noqa: E402  (signed workbench)


def run_proposition1():
    """End-to-end: in live runs every correct process builds a certified
    vector with its own value in place."""
    rows = []
    for n in (4, 7, 10):
        own_entry_ok = 0
        cert_ok = 0
        trials = list(range(10))
        for seed in trials:
            system = build_transformed_system(proposals(n), seed=seed)
            system.run(max_time=2_000)
            events = system.world.trace.of_kind("vector-built")
            assert len(events) == n
            for event in events:
                pid = event.process
                vector = event.detail["vector"]
                if vector[pid] == f"v{pid}":
                    own_entry_ok += 1
            for process in system.processes:
                problems = certified_vector_problems(
                    list(process._vector_builder.build()[1]),
                    process._vector_builder.build()[0],
                    system.params,
                    process.authority.signature_valid,
                )
                if not problems:
                    cert_ok += 1
        total = len(trials) * n
        rows.append(
            [n, percent(own_entry_ok / total), percent(cert_ok / total)]
        )
    return rows


def run_proposition2():
    """Offline adversarial: falsification detection and pairwise
    compatibility over random quorum subsets."""
    rows = []
    for n in (4, 7, 10):
        bench = SignedWorkbench(n)
        rng = random.Random(1234 + n)
        falsifications_detected = 0
        falsification_trials = 50
        for _ in range(falsification_trials):
            senders = rng.sample(range(n), bench.params.quorum)
            builder = CertifiedVectorBuilder(bench.params)
            for pid in senders:
                builder.add(bench.signed_init(pid))
            vector, cert = builder.build()
            corrupted = list(vector)
            victim = rng.choice(senders)
            corrupted[victim] = "<falsified>"
            problems = certified_vector_problems(
                list(cert), tuple(corrupted), bench.params, bench.verify
            )
            if problems:
                falsifications_detected += 1
        compatible = 0
        pair_trials = 50
        for _ in range(pair_trials):
            vectors = []
            for _build in range(2):
                senders = rng.sample(range(n), bench.params.quorum)
                builder = CertifiedVectorBuilder(bench.params)
                for pid in senders:
                    builder.add(bench.signed_init(pid))
                vectors.append(builder.build()[0])
            if vectors_compatible(*vectors):
                compatible += 1
        rows.append(
            [
                n,
                percent(falsifications_detected / falsification_trials),
                percent(compatible / pair_trials),
            ]
        )
    return rows


def test_e5_proposition_1(benchmark):
    rows = run_once(benchmark, run_proposition1)
    print_table(
        "E5a - Proposition 1: certified vector construction (10 seeds/row)",
        ["n", "own entry correct", "est_cert well-formed"],
        rows,
    )
    for row in rows:
        assert row[1] == "100%"
        assert row[2] == "100%"


def test_e5_proposition_2(benchmark):
    rows = run_once(benchmark, run_proposition2)
    print_table(
        "E5b - Proposition 2: falsification detection & vector uniqueness "
        "(50 adversarial trials/cell)",
        ["n", "falsified entry detected", "pairwise compatible"],
        rows,
    )
    for row in rows:
        assert row[1] == "100%"
        assert row[2] == "100%"
