"""E4 — Figure 4: detection coverage of the non-muteness automata.

For each fault type in the paper's taxonomy, the fraction of runs in
which the culprit is added to ``faulty_i`` by some / by every correct
process, plus the wrongful-declaration (false positive) rate. Pure
muteness must instead appear in the ◇M module's ``suspected`` set — the
paper's modularity claim made measurable.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import (
    TRANSFORMED_ATTACKS,
    transformed_attack,
    transformed_attack_profile,
)
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import SEEDS, proposals, run_once

N = 4
SEATS = {"equivocate-current": 0, "wrong-cert-current": 0}


def run_experiment():
    rows = []
    for name in sorted(TRANSFORMED_ATTACKS):
        seat = SEATS.get(name, 3)
        profile = transformed_attack_profile(name)
        summary = run_trials(
            builder=lambda seed, a=name, s=seat: build_transformed_system(
                proposals(N),
                byzantine=transformed_attack(s, a),
                seed=seed,
                delay_model=UniformDelay(0.1, 2.5),
            ),
            checker=check_vector_consensus,
            seeds=SEEDS,
        )
        rows.append(
            [
                name,
                profile.failure_class.value,
                profile.detecting_module.value,
                percent(summary.detection_by_any_rate),
                percent(summary.detection_by_all_rate),
                percent(summary.suspected_by_any_rate),
                percent(summary.false_positive_rate),
            ]
        )
    return rows


def test_e4_every_fault_type_is_caught_by_its_module(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E4 - detection coverage per fault type (n={N}, {len(SEEDS)} seeds/row)",
        [
            "attack",
            "failure class",
            "expected module",
            "declared(any)",
            "declared(all)",
            "suspected",
            "false pos.",
        ],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # Shape: no wrongful declaration of a correct process, ever.
    for row in rows:
        assert row[6] == "0%", row
    # Shape: message-visible faults are declared in every run they
    # manifest; these attacks manifest unconditionally.
    for always_detected in (
        "corrupt-vector",
        "falsified-entry",
        "forged-decide",
        "bad-signature",
        "impersonation",
        "unsigned",
        "wrong-round",
        "duplicate-current",
        "premature-decide",
        "wrong-cert-current",
    ):
        assert by_name[always_detected][3] == "100%", by_name[always_detected]
    # Shape: equivocation is provable only when both branches cross at a
    # correct process (directly or inside a certificate) — detection is
    # frequent but schedule-dependent.
    assert by_name["equivocate-init"][3] != "0%"
    assert by_name["equivocate-current"][3] != "0%"
    # Shape: pure muteness is never *declared* (it is invisible to the
    # non-muteness machinery) but always *suspected* by ◇M.
    assert by_name["mute"][3] == "0%"
    assert by_name["mute"][5] == "100%"
