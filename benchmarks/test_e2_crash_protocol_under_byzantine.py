"""E2 — Section 1 motivation: the crash protocol under arbitrary faults.

"Solutions used in the crash model become inadequate because a malicious
process can exhibit failures more subtle than crashes and these failures
can lead to the violation of the correctness criteria of the algorithm."

One Byzantine process per run attacks the Hurfin–Raynal protocol; the
table reports how often each attack violates safety (Agreement or
Validity). Muteness is the only behaviour the crash protocol tolerates.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_crash_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import CRASH_ATTACKS, crash_attack, crash_attack_profile
from repro.sim.network import UniformDelay
from repro.systems import build_crash_system

from conftest import SEEDS, proposals, run_once

N = 5

#: Seat that maximises each attack's leverage (coordinator of round 1
#: where the attack needs it).
SEATS = {
    "value-corruption": 0,
    "equivocation": 0,
    "duplication": 0,
    "spurious-decide": 4,
    "identity-forgery": 4,
    "wrong-round": 4,
    "mute": 4,
}


def run_experiment():
    rows = []
    for name in sorted(CRASH_ATTACKS):
        summary = run_trials(
            builder=lambda seed, a=name: build_crash_system(
                proposals(N),
                byzantine=crash_attack(SEATS[a], a),
                seed=seed,
                delay_model=UniformDelay(0.1, 3.0),
            ),
            checker=check_crash_consensus,
            seeds=SEEDS,
        )
        profile = crash_attack_profile(name)
        rows.append(
            [
                name,
                profile.failure_class.value,
                percent(summary.violation_rate),
                percent(summary.termination_rate),
                percent(summary.agreement_rate),
                percent(summary.validity_rate),
            ]
        )
    return rows


def test_e2_crash_protocol_is_broken_by_byzantine_faults(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E2 - crash-model protocol attacked (n={N}, {len(SEEDS)} seeds/row)",
        ["attack", "failure class", "safety viol.", "term", "agree", "valid"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # Shape: value-level attacks break safety in (essentially) every run.
    assert by_name["spurious-decide"][2] == "100%"
    assert by_name["value-corruption"][2] == "100%"
    # Shape: forged identities and equivocation break safety often.
    assert by_name["identity-forgery"][2] != "0%"
    assert by_name["equivocation"][2] != "0%"
    # Shape: muteness alone is tolerated (it is just a crash).
    assert by_name["mute"][2] == "0%"
    assert by_name["mute"][3] == "100%"
