"""E21 (performance) — sharded scaling: aggregate throughput vs shard count.

Two measurements, one artifact (``BENCH_shard.json``, repo root;
methodology in docs/SHARDING.md):

1. **Loopback scaling sweep** (deterministic, virtual time): the full
   real-codec node stack per shard on one shared manual scheduler, with
   a fixed per-hop virtual latency so protocol rounds have a cost and a
   deliberately small per-group capacity (batch 4, window 2) so a
   single group saturates under the open-loop burst. The sweep holds
   the offered load and the per-shard replica count fixed while the
   shard count doubles: 1 -> 2 -> 4. The paper-level claim under test
   is near-linear aggregate throughput, because the groups share no
   protocol state — the deterministic key map is the only cross-shard
   agreement. The acceptance bar: 4 shards >= 2.5x the 1-shard
   baseline, with per-shard convergence and exactly-once oracles green
   in every cell.

2. **TCP wall-clock variant**: 1-shard and 2-shard deployments of real
   replica subprocesses absorbing the identical open-loop socket
   workload end to end. Wall-clock fields are machine-dependent and
   excluded from determinism claims; the oracle is completion plus
   per-shard routing totals, not the measured ops/s.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.analysis.reporting import print_table
from repro.shard import (
    ShardedLocalCluster,
    ShardedNetClient,
    loopback_scaling_cell,
    make_shard_genesis,
    wait_shards_ready,
)

from conftest import run_once

ARTIFACT = Path("BENCH_shard.json")

SEED = 21
#: Shard counts under test at fixed per-shard replica count.
SHARDS = (1, 2, 4)
REPLICAS_PER_SHARD = 4
#: Open-loop burst shared by every cell: same keys, same clients, same
#: request count — only the shard count moves.
REQUESTS = 768
CLIENTS = 4

TCP_REQUESTS = 96
TCP_CONCURRENCY = 12


def run_sweep() -> list[dict]:
    """One deterministic loopback cell per shard count."""
    return [
        loopback_scaling_cell(
            shards=shards,
            clients=CLIENTS,
            requests=REQUESTS,
            replicas_per_shard=REPLICAS_PER_SHARD,
            seed=SEED,
        )
        for shards in SHARDS
    ]


async def _tcp_cell(shards: int) -> dict:
    """One wall-clock cell: real subprocesses, real sockets."""
    genesis = make_shard_genesis(
        shards, REPLICAS_PER_SHARD, seed=SEED, name=f"e21-s{shards}"
    )
    with tempfile.TemporaryDirectory(prefix="repro-e21-") as workdir:
        cluster = ShardedLocalCluster(genesis, workdir)
        client = ShardedNetClient(genesis, 0)
        try:
            cluster.start_all()
            await wait_shards_ready(client, timeout=30.0)
            start = time.perf_counter()
            stats = await client.workload(
                TCP_REQUESTS, concurrency=TCP_CONCURRENCY, tag="e21"
            )
            wall = time.perf_counter() - start
        finally:
            await client.close()
            cluster.terminate_all()
    return {
        "shards": shards,
        "replicas_per_shard": REPLICAS_PER_SHARD,
        "requests": TCP_REQUESTS,
        "concurrency": TCP_CONCURRENCY,
        "completed": stats["completed"],
        "sets_by_shard": stats["sets_by_shard"],
        "resubmissions": stats["resubmissions"],
        # Wall-clock values: machine-dependent, excluded from determinism.
        "wall_seconds": round(wall, 4),
        "ops_per_second": round(stats["completed"] / wall, 4),
    }


def run_tcp() -> list[dict]:
    return [asyncio.run(_tcp_cell(shards)) for shards in (1, 2)]


def _rows(cells):
    baseline = cells[0]["throughput"]
    return [
        [
            cell["shards"],
            cell["requests"],
            cell["completed"],
            round(cell["virtual_time"], 2),
            round(cell["throughput"], 1),
            round(cell["throughput"] / baseline, 2),
            "yes" if cell["converged"] else "NO",
            "yes" if cell["exactly_once"] else "NO",
        ]
        for cell in cells
    ]


def run_experiment():
    """Table rows for ``python -m repro experiments --only e21``.

    Loopback sweep only: the CLI path stays subprocess-free; the TCP
    wall-clock variant runs under pytest.
    """
    return _rows(run_sweep())


def _speedup(cells, shards):
    for cell in cells:
        if cell["shards"] == shards:
            return cell["throughput"] / cells[0]["throughput"]
    raise AssertionError(shards)


def test_e21_shard_scaling(benchmark):
    def experiment():
        return {"sweep": run_sweep(), "tcp": run_tcp()}

    results = run_once(benchmark, experiment)
    cells = results["sweep"]
    print_table(
        f"E21 - shard scaling ({REPLICAS_PER_SHARD} replicas/shard, "
        f"{REQUESTS} requests, {CLIENTS} clients, seed {SEED})",
        ["shards", "requests", "completed", "virtual time", "throughput",
         "speedup", "converged", "exactly once"],
        _rows(cells),
    )
    for cell in results["tcp"]:
        print(
            f"tcp x{cell['shards']}: {cell['completed']} commits in "
            f"{cell['wall_seconds']:.2f}s ({cell['ops_per_second']:.0f} ops/s, "
            f"routed {cell['sets_by_shard']})"
        )
    ARTIFACT.write_text(
        json.dumps(
            {
                "experiment": "e21_shard_scaling",
                "seed": SEED,
                "replicas_per_shard": REPLICAS_PER_SHARD,
                "requests": REQUESTS,
                "clients": CLIENTS,
                "sweep": cells,
                "tcp": results["tcp"],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    # Oracles: every cell commits the full burst, converges per shard,
    # and commits exactly what the client routed to each shard.
    for cell in cells:
        assert cell["all_complete"], cell
        assert cell["converged"], cell
        assert cell["exactly_once"], cell
        assert cell["completed"] == REQUESTS
        # Equal offered load across shard counts: the key map just
        # spreads the same burst.
        assert sum(int(count) for count in cell["routed"].values()) == REQUESTS
    # Shape: aggregate throughput grows with the shard count.
    assert _speedup(cells, 2) > 1.4
    # Acceptance bar: near-linear at 4 shards.
    assert _speedup(cells, 4) >= 2.5, [cell["throughput"] for cell in cells]
    # TCP variant: the identical workload completes at both shard counts
    # and the 2-shard run really used both groups.
    for cell in results["tcp"]:
        assert cell["completed"] == TCP_REQUESTS
    two = results["tcp"][1]["sets_by_shard"]
    assert len(two) == 2 and all(count > 0 for count in two.values())
