"""E3 — Figure 3: the transformed protocol under the same attack gallery.

The headline reproduction: with f <= F Byzantine processes, the correct
processes keep Agreement, Termination and Vector Validity in 100% of the
runs, for every attack the crash protocol fell to in E2.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import TRANSFORMED_ATTACKS, transformed_attack
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import SEEDS, export_artifact, metrics_dir, proposals, run_once

N = 4
SEATS = {"equivocate-current": 0, "wrong-cert-current": 0}


def run_experiment():
    rows = []
    for name in sorted(TRANSFORMED_ATTACKS):
        seat = SEATS.get(name, 3)
        summary = run_trials(
            builder=lambda seed, a=name, s=seat: build_transformed_system(
                proposals(N),
                byzantine=transformed_attack(s, a),
                seed=seed,
                delay_model=UniformDelay(0.1, 2.5),
            ),
            checker=check_vector_consensus,
            seeds=SEEDS,
        )
        rows.append(
            [
                name,
                percent(summary.termination_rate),
                percent(summary.agreement_rate),
                percent(summary.validity_rate),
                summary.all_hold_ci,
                summary.mean_rounds,
                summary.mean_messages,
            ]
        )
        if metrics_dir() is not None:
            # One representative seed per attack, as a comparable artifact.
            witness = build_transformed_system(
                proposals(N),
                byzantine=transformed_attack(seat, name),
                seed=0,
                delay_model=UniformDelay(0.1, 2.5),
            )
            witness.run()
            export_artifact(
                witness, f"e3-{name}", experiment="e3", attack=name, n=N, seed=0
            )
    return rows


def test_e3_transformed_protocol_survives_every_attack(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E3 - transformed protocol (Fig. 3) attacked (n={N}, F=1, "
        f"{len(SEEDS)} seeds/row)",
        ["attack", "term", "agree", "vec-valid", "all hold (95% CI)",
         "rounds", "msgs"],
        rows,
    )
    # Shape: every property holds in every run, for every attack — the
    # paper's central claim.
    for row in rows:
        assert row[1] == "100%", row
        assert row[2] == "100%", row
        assert row[3] == "100%", row
