"""E12 (baseline) — Interactive Consistency vs asynchronous Vector Consensus.

Paper footnote 6: Vector Consensus was "first proposed in synchronous
systems where it is called the Interactive Consistency problem [11]".
This experiment quantifies what the synchrony assumption buys and costs:

* **vector quality** — EIG guarantees *every* correct entry (n - f of
  them); the asynchronous transformed protocol can only promise
  ``alpha = n - 2F`` (it must decide after n - F INITs);
* **cost** — EIG's message payloads grow exponentially with f (level r
  has n(n-1)...(n-r+1) reports), while the transformed protocol's
  certificates stay polynomial;
* **model** — EIG needs lock-step rounds; the transformed protocol runs
  under full asynchrony.
"""

from __future__ import annotations

from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attack
from repro.messages.consensus import NULL
from repro.synchronous.eig import EigLiar, eig_rounds, run_interactive_consistency
from repro.systems import build_transformed_system

from conftest import proposals, run_once

SEEDS = range(20)


def eig_cell(n: int, f: int):
    correct_entries = 0.0
    agreed = 0
    for seed in SEEDS:
        liar = n - 1
        procs = run_interactive_consistency(
            proposals(n), f=f, byzantine={liar: EigLiar}, seed=seed
        )
        vectors = {p.vector for i, p in enumerate(procs) if i != liar}
        if len(vectors) == 1:
            agreed += 1
        vector = vectors.pop()
        correct_entries += sum(
            1 for pid in range(n) if pid != liar and vector[pid] == f"v{pid}"
        )
    return [
        f"EIG (sync) n={n} f={f}",
        percent(agreed / len(SEEDS)),
        correct_entries / len(SEEDS),
        n - 1,  # every correct entry is guaranteed
        eig_rounds(f),
    ]


def transformed_cell(n: int, f: int):
    correct_entries = 0.0
    agreed = 0
    for seed in SEEDS:
        liar = n - 1
        system = build_transformed_system(
            proposals(n),
            byzantine=transformed_attack(liar, "corrupt-vector"),
            f=f,
            seed=seed,
        )
        system.run(max_time=2_000)
        vectors = {
            system.processes[pid].decision
            for pid in system.correct_pids
            if system.processes[pid].decided
        }
        if len(vectors) == 1:
            agreed += 1
        vector = vectors.pop()
        correct_entries += sum(
            1
            for pid in range(n)
            if pid != liar and vector[pid] not in (NULL,) and vector[pid] == f"v{pid}"
        )
    params_floor = n - 2 * f
    return [
        f"transformed (async) n={n} F={f}",
        percent(agreed / len(SEEDS)),
        correct_entries / len(SEEDS),
        params_floor,
        "async",
    ]


def run_experiment():
    rows = []
    for n, f in ((4, 1), (7, 2)):
        rows.append(eig_cell(n, f))
        rows.append(transformed_cell(n, f))
    return rows


def test_e12_sync_vs_async_vector_agreement(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E12 - Interactive Consistency [11] vs transformed Vector Consensus "
        f"({len(SEEDS)} seeds/row)",
        ["protocol", "agreement", "correct entries (mean)", "guaranteed", "rounds"],
        rows,
    )
    # Shape: both agree in every run.
    for row in rows:
        assert row[1] == "100%", row
    # Shape: synchrony buys completeness — EIG's measured correct entries
    # meet the n - 1 ceiling, the async protocol's meet (and may exceed)
    # its weaker n - 2F floor but cannot promise more.
    for eig_row, async_row in zip(rows[::2], rows[1::2]):
        assert eig_row[2] == eig_row[3]
        assert async_row[2] >= async_row[3]
        assert eig_row[3] > async_row[3]
