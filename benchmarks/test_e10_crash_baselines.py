"""E10 — crash-model baselines in context: Hurfin–Raynal vs Chandra–Toueg.

The paper transforms Hurfin–Raynal [8] because of its simple one-phase
rounds. This experiment quantifies the baseline comparison against the
classic Chandra–Toueg ◇S protocol [3]: HR trades more messages per round
(all-to-all votes) for fewer communication steps when the coordinator is
correct and unsuspected; CT centralises through the coordinator.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_crash_consensus
from repro.analysis.reporting import percent, print_table
from repro.systems import build_crash_system

from conftest import SEEDS, proposals, run_once

N = 7


def run_experiment():
    rows = []
    for protocol in ("hurfin-raynal", "chandra-toueg"):
        for scenario, crash in (
            ("failure-free", {}),
            ("coordinator crash", {0: 0.0}),
            ("two crashes", {0: 0.0, 1: 1.0}),
        ):
            summary = run_trials(
                builder=lambda seed, c=crash, p=protocol: build_crash_system(
                    proposals(N), crash_at=c, protocol=p, seed=seed
                ),
                checker=check_crash_consensus,
                seeds=SEEDS,
            )
            rows.append(
                [
                    protocol,
                    scenario,
                    percent(summary.all_hold_rate),
                    summary.mean_messages,
                    summary.mean_decision_time,
                ]
            )
    return rows


def test_e10_hr_vs_ct(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E10 - crash-model baselines (n={N}, {len(SEEDS)} seeds/row)",
        ["protocol", "scenario", "all hold", "msgs", "latency"],
        rows,
    )
    # Shape: both baselines are correct everywhere.
    for row in rows:
        assert row[2] == "100%", row
    by_key = {(row[0], row[1]): row for row in rows}
    hr = by_key[("hurfin-raynal", "failure-free")]
    ct = by_key[("chandra-toueg", "failure-free")]
    # Shape: HR's decentralised votes cost more messages than CT's
    # coordinator-centric phases...
    assert hr[3] > ct[3]
    # ...but HR decides in fewer communication steps (lower latency).
    assert hr[4] < ct[4]
