"""E1 — Figure 2: the Hurfin–Raynal protocol under crash faults.

Reproduces the baseline the paper transforms: for 0..⌊(n-1)/2⌋ crashes,
the crash protocol keeps Agreement / Termination / Validity, with rounds
and messages growing as crashes hit coordinator seats.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_crash_consensus
from repro.analysis.reporting import percent, print_table
from repro.systems import build_crash_system

from conftest import SEEDS, proposals, run_once

N = 5


def crash_schedule(count: int, seed: int) -> dict[int, float]:
    """Crash the first ``count`` pids at staggered early times."""
    return {pid: 0.5 + 0.7 * pid + 0.01 * (seed % 7) for pid in range(count)}


def run_experiment():
    rows = []
    for crashes in range(0, (N - 1) // 2 + 1):
        summary = run_trials(
            builder=lambda seed, c=crashes: build_crash_system(
                proposals(N),
                crash_at=crash_schedule(c, seed),
                seed=seed,
                fd_noise_rate=0.1,
                fd_accuracy_time=10.0,
            ),
            checker=check_crash_consensus,
            seeds=SEEDS,
        )
        rows.append(
            [
                crashes,
                percent(summary.termination_rate),
                percent(summary.agreement_rate),
                percent(summary.validity_rate),
                summary.mean_rounds,
                summary.mean_messages,
                summary.mean_decision_time,
            ]
        )
    return rows


def test_e1_hurfin_raynal_under_crashes(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        "E1 - Hurfin-Raynal (Fig. 2) under crash faults "
        f"(n={N}, {len(SEEDS)} seeds/row)",
        ["crashes", "term", "agree", "valid", "rounds", "msgs", "latency"],
        rows,
    )
    # Shape: all three properties hold at every tolerated crash count.
    for row in rows:
        assert row[1] == row[2] == row[3] == "100%"
    # Shape: crashing early coordinators costs extra rounds.
    assert rows[-1][4] > rows[0][4]
