"""E9 — ◇M muteness-detector quality vs protocol latency.

The timeout-based ◇M implementation (Doudou et al. [6]) trades detection
latency against wrongful suspicions: a short initial timeout suspects a
mute coordinator quickly (fast rounds) but wrongly suspects slow correct
processes (extra rounds, churn); a long timeout never errs but waits.
The sweep shows the trade-off and that correctness is independent of the
tuning — exactly why the protocol can use an *unreliable* detector.
"""

from __future__ import annotations

from repro.analysis.experiments import run_trials
from repro.analysis.properties import check_vector_consensus
from repro.analysis.reporting import percent, print_table
from repro.byzantine import transformed_attack
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

from conftest import proposals, run_once

N = 4
SEEDS = range(15)
TIMEOUTS = (2.0, 4.0, 8.0, 16.0, 32.0)


def wrongful_suspicions(system) -> float:
    return sum(
        system.processes[pid].detector.wrongful_suspicions
        for pid in system.correct_pids
    )


def run_experiment():
    rows = []
    for timeout in TIMEOUTS:
        # Mute coordinator: detection latency gates round progress.
        summary = run_trials(
            builder=lambda seed, t=timeout: build_transformed_system(
                proposals(N),
                byzantine=transformed_attack(0, "mute"),
                muteness="timeout",
                muteness_timeout=t,
                seed=seed,
                delay_model=UniformDelay(0.2, 1.5),
            ),
            checker=check_vector_consensus,
            seeds=SEEDS,
            max_time=2_000.0,
        )
        rows.append(
            [
                timeout,
                percent(summary.all_hold_rate),
                summary.mean_decision_time,
                summary.mean_rounds,
                summary.mean_messages,
            ]
        )
    return rows


def run_wrongful_experiment():
    """Failure-free runs: how much churn does an aggressive timeout cost?"""
    rows = []
    for timeout in TIMEOUTS:
        churn = 0.0
        latency = 0.0
        trials = list(SEEDS)
        for seed in trials:
            system = build_transformed_system(
                proposals(N),
                muteness="timeout",
                muteness_timeout=timeout,
                seed=seed,
                delay_model=UniformDelay(0.2, 1.5),
            )
            system.run(max_time=2_000.0)
            churn += wrongful_suspicions(system)
            times = [
                p.decision_time
                for p in system.processes
                if p.decided and p.decision_time is not None
            ]
            latency += sum(times) / len(times)
        rows.append([timeout, churn / len(trials), latency / len(trials)])
    return rows


def test_e9_detection_latency_vs_decision_latency(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        f"E9a - timeout ◇M vs a mute coordinator (n={N}, {len(SEEDS)} seeds/row)",
        ["initial timeout", "all hold", "latency", "rounds", "msgs"],
        rows,
    )
    # Shape: correctness never depends on the tuning.
    for row in rows:
        assert row[1] == "100%", row
    # Shape: a patient detector waits longer for the mute coordinator.
    assert rows[-1][2] > rows[0][2]


def test_e9_wrongful_suspicion_churn(benchmark):
    rows = run_once(benchmark, run_wrongful_experiment)
    print_table(
        f"E9b - failure-free churn vs timeout (n={N}, {len(SEEDS)} seeds/row)",
        ["initial timeout", "wrongful suspicions/run", "latency"],
        rows,
    )
    # Shape: aggressive timeouts err; patient ones do not.
    assert rows[0][1] >= rows[-1][1]
    assert rows[-1][1] == 0.0
