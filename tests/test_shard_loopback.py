"""Tests: the deterministic sharded loopback twin (docs/SHARDING.md).

The twin runs every shard's real :class:`NetNode` stack on one shared
:class:`ManualScheduler` — same codec, same certificates, same state
transfer — so these tests can pin the strongest contracts cheaply:
byte-identical smoke records across runs (the ``make shard-smoke``
``cmp`` depends on this), per-shard exactly-once against the routed
counts, kill/rejoin via certified transfer inside one shard with zero
blast radius on the others, and the scaling cell's oracles.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shard import (
    ShardedLoopbackCluster,
    loopback_scaling_cell,
    loopback_shard_genesis,
    run_loopback_smoke,
    smoke_json,
)


class TestSmokeRecord:
    def test_double_run_is_byte_identical(self):
        first = run_loopback_smoke(requests=16)
        second = run_loopback_smoke(requests=16)
        assert first["ok"]
        assert smoke_json(first) == smoke_json(second)

    def test_kill_rejoin_transfers_state(self):
        record = run_loopback_smoke(requests=16, kill_shard=1, kill_pid=2)
        assert record["ok"]
        assert record["transfers"]["1"]["2"] >= 1
        # Exactly-once, per shard: every replica committed exactly what
        # the client routed to its shard.
        for shard, routed in record["routed"].items():
            assert all(
                count == routed
                for count in record["committed"][shard].values()
            )

    def test_no_kill_variant(self):
        record = run_loopback_smoke(requests=16, kill_shard=None)
        assert record["ok"]
        assert record["kill"] is None
        assert record["transfers"] == {}

    def test_shards_have_distinct_digests(self):
        record = run_loopback_smoke(requests=16)
        per_shard = [
            next(iter(digests.values()))
            for digests in record["digests"].values()
        ]
        assert len(set(per_shard)) == len(per_shard)

    def test_distinct_genesis_id_per_shard(self):
        record = run_loopback_smoke(requests=8)
        ids = list(record["genesis_ids"].values())
        assert len(set(ids)) == len(ids)

    def test_kill_shard_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            run_loopback_smoke(shards=2, kill_shard=5)


class TestClusterGuards:
    def test_client_budget_enforced(self):
        genesis = loopback_shard_genesis(2)
        with pytest.raises(ConfigurationError):
            ShardedLoopbackCluster(genesis, clients=99)

    def test_genesis_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            loopback_shard_genesis(0)

    def test_blast_radius_of_a_kill_is_one_shard(self):
        genesis = loopback_shard_genesis(2)
        cluster = ShardedLoopbackCluster(genesis)
        for i in range(8):
            cluster.submit(f"k{i}", f"v{i}")
        cluster.pump(4.0)
        untouched = {
            shard: cluster.shard_committed(shard)
            for shard in range(2)
            if shard != 1
        }
        cluster.kill(1, 2)
        cluster.pump(4.0)
        for shard, before in untouched.items():
            after = cluster.shard_committed(shard)
            assert all(after[pid] >= before[pid] for pid in before)


class TestScalingCell:
    def test_cell_oracles_hold(self):
        cell = loopback_scaling_cell(shards=2, requests=128)
        assert cell["all_complete"]
        assert cell["converged"]
        assert cell["exactly_once"]
        assert cell["completed"] == 128
        assert sum(int(c) for c in cell["routed"].values()) == 128
        assert cell["throughput"] > 0

    def test_offered_load_is_shard_count_independent(self):
        one = loopback_scaling_cell(shards=1, requests=128)
        two = loopback_scaling_cell(shards=2, requests=128)
        assert one["requests"] == two["requests"]
        assert sum(int(c) for c in one["routed"].values()) == sum(
            int(c) for c in two["routed"].values()
        )
