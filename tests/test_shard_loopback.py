"""Tests: the deterministic sharded loopback twin (docs/SHARDING.md).

The twin runs every shard's real :class:`NetNode` stack on one shared
:class:`ManualScheduler` — same codec, same certificates, same state
transfer — so these tests can pin the strongest contracts cheaply:
byte-identical smoke records across runs (the ``make shard-smoke``
``cmp`` depends on this), per-shard exactly-once against the routed
counts, kill/rejoin via certified transfer inside one shard with zero
blast radius on the others, and the scaling cell's oracles.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.clock import ManualScheduler
from repro.shard import (
    ShardedLoopbackCluster,
    loopback_scaling_cell,
    loopback_shard_genesis,
    run_loopback_smoke,
    smoke_json,
)
from repro.shard.loopback import LatencyHub


class TestSmokeRecord:
    def test_double_run_is_byte_identical(self):
        first = run_loopback_smoke(requests=16)
        second = run_loopback_smoke(requests=16)
        assert first["ok"]
        assert smoke_json(first) == smoke_json(second)

    def test_kill_rejoin_transfers_state(self):
        record = run_loopback_smoke(requests=16, kill_shard=1, kill_pid=2)
        assert record["ok"]
        assert record["transfers"]["1"]["2"] >= 1
        # Exactly-once, per shard: every replica committed exactly what
        # the client routed to its shard.
        for shard, routed in record["routed"].items():
            assert all(
                count == routed
                for count in record["committed"][shard].values()
            )

    def test_no_kill_variant(self):
        record = run_loopback_smoke(requests=16, kill_shard=None)
        assert record["ok"]
        assert record["kill"] is None
        assert record["transfers"] == {}

    def test_shards_have_distinct_digests(self):
        record = run_loopback_smoke(requests=16)
        per_shard = [
            next(iter(digests.values()))
            for digests in record["digests"].values()
        ]
        assert len(set(per_shard)) == len(per_shard)

    def test_distinct_genesis_id_per_shard(self):
        record = run_loopback_smoke(requests=8)
        ids = list(record["genesis_ids"].values())
        assert len(set(ids)) == len(ids)

    def test_kill_shard_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            run_loopback_smoke(shards=2, kill_shard=5)


class TestClusterGuards:
    def test_client_budget_enforced(self):
        genesis = loopback_shard_genesis(2)
        with pytest.raises(ConfigurationError):
            ShardedLoopbackCluster(genesis, clients=99)

    def test_genesis_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            loopback_shard_genesis(0)

    def test_blast_radius_of_a_kill_is_one_shard(self):
        genesis = loopback_shard_genesis(2)
        cluster = ShardedLoopbackCluster(genesis)
        for i in range(8):
            cluster.submit(f"k{i}", f"v{i}")
        cluster.pump(4.0)
        untouched = {
            shard: cluster.shard_committed(shard)
            for shard in range(2)
            if shard != 1
        }
        cluster.kill(1, 2)
        cluster.pump(4.0)
        for shard, before in untouched.items():
            after = cluster.shard_committed(shard)
            assert all(after[pid] >= before[pid] for pid in before)


class TestLatencyHubLinks:
    """Per-link virtual delays: heterogeneous fabrics are modelable."""

    @staticmethod
    def _hub(**kwargs):
        scheduler = ManualScheduler()
        hub = LatencyHub(scheduler, **kwargs)
        arrivals: list[tuple[int, float]] = []
        for pid in (0, 1, 2):
            hub.register(
                pid,
                lambda src, msg, pid=pid: arrivals.append(
                    (pid, scheduler.now)
                ),
            )
        return scheduler, hub, arrivals

    def test_slow_link_arrives_later(self):
        scheduler, hub, arrivals = self._hub(
            delay=0.01, link_delays={(0, 1): 0.5}
        )
        hub.submit(0, 1, {"type": "status_request"})
        hub.submit(0, 2, {"type": "status_request"})
        scheduler.advance(1.0)
        assert [pid for pid, _ in arrivals] == [2, 1]
        times = dict(arrivals)
        assert times[2] == pytest.approx(0.01)
        assert times[1] == pytest.approx(0.5)

    def test_unlisted_links_use_uniform_delay(self):
        hub = LatencyHub(
            ManualScheduler(), delay=0.25, link_delays={(1, 2): 0.75}
        )
        assert hub.delay_for(1, 2) == 0.75
        assert hub.delay_for(2, 1) == 0.25
        assert hub.delay_for(0, 1) == 0.25

    def test_per_link_fifo_survives_heterogeneity(self):
        scheduler, hub, arrivals = self._hub(
            delay=0.01, link_delays={(0, 1): 0.3}
        )
        for _ in range(4):
            hub.submit(0, 1, {"type": "status_request"})
        scheduler.advance(1.0)
        # Constant per-link delay: the slow link delays but never
        # reorders its own traffic.
        assert [pid for pid, _ in arrivals] == [1, 1, 1, 1]
        assert hub.frames_delivered == 4

    def test_empty_map_is_the_uniform_default(self):
        assert LatencyHub(ManualScheduler(), link_delays={}).link_delays is None

    def test_cluster_completes_over_heterogeneous_links(self):
        genesis = loopback_shard_genesis(2)
        # Every link into and out of replica 0 is 10x slower, in every
        # shard — a laggard-rack model. Progress must survive it.
        slow = {
            link: 0.05
            for pid in range(1, 4)
            for link in ((0, pid), (pid, 0))
        }
        cluster = ShardedLoopbackCluster(genesis, link_delays=slow)
        for i in range(12):
            cluster.submit(f"k{i}", f"v{i}")
        assert cluster.run_until_complete(budget=60.0)


class TestScalingCell:
    def test_cell_oracles_hold(self):
        cell = loopback_scaling_cell(shards=2, requests=128)
        assert cell["all_complete"]
        assert cell["converged"]
        assert cell["exactly_once"]
        assert cell["completed"] == 128
        assert sum(int(c) for c in cell["routed"].values()) == 128
        assert cell["throughput"] > 0

    def test_offered_load_is_shard_count_independent(self):
        one = loopback_scaling_cell(shards=1, requests=128)
        two = loopback_scaling_cell(shards=2, requests=128)
        assert one["requests"] == two["requests"]
        assert sum(int(c) for c in one["routed"].values()) == sum(
            int(c) for c in two["routed"].values()
        )
