"""Unit tests: transformed-protocol internals (buffering, pipeline edges)."""

from __future__ import annotations

import pytest

from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.certificates import CertificationAuthority, EMPTY_CERTIFICATE
from repro.core.specs import SystemParameters
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.detectors.oracles import OracleDetector
from repro.messages.consensus import Init, VCurrent, VNext
from repro.sim.network import FixedDelay
from repro.sim.world import World
from repro.systems import build_transformed_system


def build_world(n=4, seed=0):
    params = SystemParameters.for_n(n)
    keys = KeyAuthority(n, seed=seed)
    scheme = SignatureScheme(keys)
    processes = []
    for pid in range(n):
        processes.append(
            TransformedConsensusProcess(
                proposal=f"v{pid}",
                params=params,
                authority=CertificationAuthority(scheme, keys.signer_for(pid)),
                detector=OracleDetector(status=lambda _p: False),
            )
        )
    world = World(processes, seed=seed, delay_model=FixedDelay(0.5))
    return world, processes


class TestIngressPipeline:
    def test_unsigned_payload_declared(self):
        world, processes = build_world()
        world.start()
        target = processes[0]
        target.on_message(2, "garbage")
        assert 2 in target.faulty

    def test_wrong_channel_identity_declared(self):
        world, processes = build_world()
        world.start()
        target = processes[0]
        honest_init = processes[1].authority.make(
            Init(sender=1, value="v1"), EMPTY_CERTIFICATE
        )
        target.on_message(3, honest_init)  # replayed on the wrong channel
        assert 3 in target.faulty
        assert 1 not in target.faulty

    def test_own_channel_never_self_declares(self):
        world, processes = build_world()
        world.start()
        target = processes[0]
        target.on_message(0, "garbage-from-self")
        assert 0 not in target.faulty

    def test_detection_continues_after_decision(self):
        system = build_transformed_system([f"v{i}" for i in range(4)], seed=1)
        system.run()
        target = system.processes[0]
        assert target.decided
        target.on_message(2, "late-garbage")
        assert 2 in target.faulty


class TestRoundBuffering:
    def _run_init_phase(self):
        world, processes = build_world()
        world.run(max_events=400, max_time=3.0)  # enough for INIT + round 1 start
        return world, processes

    def test_stale_votes_discarded(self):
        world, processes = self._run_init_phase()
        target = next(p for p in processes if p.phase == "rounds")
        target.round = 5  # force ahead
        sender = processes[1]
        stale = sender.authority.make(
            VNext(sender=1, round=1), EMPTY_CERTIFICATE
        )
        before = len(target.next_cert)
        # Bypass the monitor (which would flag the round regression) and
        # exercise the protocol-level staleness rule directly.
        target.handle_valid(stale)
        assert len(target.next_cert) == before

    def test_future_votes_buffered(self):
        world, processes = self._run_init_phase()
        target = next(p for p in processes if p.phase == "rounds")
        sender = processes[1]
        future = sender.authority.make(
            VNext(sender=1, round=target.round + 2), EMPTY_CERTIFICATE
        )
        target.handle_valid(future)
        assert any(
            m.body.round == target.round + 2
            for msgs in target._future.values()
            for m in msgs
        )

    def test_votes_during_init_phase_buffered(self):
        world, processes = build_world()
        world.start()
        target = processes[0]
        assert target.phase == "init"
        sender = processes[1]
        early = sender.authority.make(
            VNext(sender=1, round=1), EMPTY_CERTIFICATE
        )
        target.handle_valid(early)
        assert target._future

    def test_straggler_init_ignored_after_vector_built(self):
        system = build_transformed_system([f"v{i}" for i in range(4)], seed=2)
        system.run()
        target = system.processes[0]
        vector_before = target.est_vect
        late_init = system.processes[3].authority.make(
            Init(sender=3, value="v3"), EMPTY_CERTIFICATE
        )
        target._on_init(late_init)
        assert target.est_vect == vector_before


class TestStateExposure:
    def test_monitor_states_of_peers_reach_final(self):
        system = build_transformed_system([f"v{i}" for i in range(4)], seed=3)
        system.run()
        target = system.processes[0]
        states = {pid: target.monitor_bank.state_of(pid) for pid in range(4)}
        assert states[0] == "self"
        # Every peer's stream ended with its DECIDE relay.
        assert all(state == "final" for pid, state in states.items() if pid != 0)

    def test_decide_value_is_write_once(self):
        system = build_transformed_system([f"v{i}" for i in range(4)], seed=4)
        system.run()
        target = system.processes[0]
        first = target.decision
        target.decide_value(("x",) * 4, round_number=9)
        assert target.decision == first
