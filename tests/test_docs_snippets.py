"""docs-check: every ```python snippet in the docs actually executes.

Documentation rots when its examples drift from the API. This module
extracts every fenced ```python block from ``README.md`` and
``docs/*.md`` and executes it in a fresh namespace, chdir'd to a temp
directory (so snippets may freely write artifact files).

Conventions for doc authors:

* a block fenced as ```python is a *standalone, runnable* example —
  it must import everything it uses and run in a few seconds;
* non-runnable material (pseudo-code, shell, JSON, ASCII diagrams)
  belongs in a differently-tagged fence (```text, ```bash, ```json, ...).

Run just this check with ``make docs-check``; it also runs as part of
the tier-1 suite.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

_FENCE = re.compile(r"^```python\n(.*?)^```", re.DOTALL | re.MULTILINE)


def snippets():
    for path in DOC_FILES:
        if not path.exists():
            continue
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(_FENCE.finditer(text), start=1):
            line = text[: match.start()].count("\n") + 2
            yield pytest.param(
                path,
                line,
                match.group(1),
                id=f"{path.name}:{index}",
            )


@pytest.mark.docs
@pytest.mark.parametrize("path,line,code", list(snippets()))
def test_doc_snippet_executes(path, line, code, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippet file output lands in tmp
    source = f"{path.relative_to(ROOT)}:{line}"
    namespace = {"__name__": "__docs__"}
    try:
        exec(compile(code, source, "exec"), namespace)
    except Exception as exc:  # pragma: no cover - failure path
        pytest.fail(f"snippet at {source} raised {type(exc).__name__}: {exc}")


def test_docs_have_snippets():
    """The check is live: the documented examples were actually found."""
    found = list(snippets())
    assert len(found) >= 10, [p.name for p, *_ in (s.values for s in found)]
    covered = {s.values[0].name for s in found}
    # The network/transport page must stay executable documentation.
    assert "NETWORK.md" in covered, covered
