"""Integration tests: the transformed protocol (Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.properties import check_detection, check_vector_consensus
from repro.core.modules import ModuleConfig
from repro.messages.consensus import NULL
from repro.sim.network import ExponentialDelay, UniformDelay
from repro.systems import build_transformed_system


def proposals(n):
    return [f"v{i}" for i in range(n)]


class TestFailureFreeRuns:
    def test_all_decide_one_vector(self):
        system = build_transformed_system(proposals(4), seed=1)
        result = system.run()
        assert result.quiescent()
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_decided_vector_has_quorum_entries(self):
        system = build_transformed_system(proposals(7), seed=2)
        system.run()
        vector = system.processes[0].decision
        present = [v for v in vector if v != NULL]
        assert len(present) == system.params.quorum

    def test_entries_match_proposals(self):
        system = build_transformed_system(proposals(4), seed=3)
        system.run()
        vector = system.processes[0].decision
        for pid, entry in enumerate(vector):
            assert entry in (f"v{pid}", NULL)

    def test_no_false_fault_declarations(self):
        system = build_transformed_system(proposals(7), seed=4)
        system.run()
        for process in system.processes:
            assert process.faulty == frozenset()

    def test_round_one_decision_when_nobody_is_suspected(self):
        system = build_transformed_system(proposals(4), seed=5)
        system.run()
        assert all(p.decision_round == 1 for p in system.processes)

    @pytest.mark.parametrize("n", [4, 5, 7, 10])
    def test_various_system_sizes(self, n):
        system = build_transformed_system(proposals(n), seed=6)
        system.run()
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations


class TestCrashTolerance:
    def test_crashed_coordinator(self):
        system = build_transformed_system(
            proposals(4), crash_at={0: 0.0}, seed=7
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        deciders = [p for p in system.processes if p.pid != 0 and p.decided]
        assert all(p.decision_round >= 2 for p in deciders)

    def test_crash_mid_protocol(self):
        system = build_transformed_system(
            proposals(7), crash_at={2: 1.5, 5: 3.0}, seed=8
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_timeout_muteness_detector_path(self):
        system = build_transformed_system(
            proposals(4), crash_at={0: 0.2}, muteness="timeout", seed=9
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        detection = check_detection(system)
        assert 0 in detection.suspected_by_any


class TestAdverseSchedules:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_properties_hold_across_random_schedules(self, seed):
        system = build_transformed_system(
            proposals(4),
            seed=seed,
            delay_model=UniformDelay(0.1, 3.0),
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_heavy_tailed_delays(self):
        system = build_transformed_system(
            proposals(5),
            f=1,
            seed=10,
            delay_model=ExponentialDelay(mean=2.0, base=0.1, cap=40.0),
        )
        system.run(max_time=5_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_multi_round_runs_terminate(self):
        # Timeout muteness detector with a short fuse provokes wrongful
        # suspicions and extra rounds; the protocol must still converge.
        system = build_transformed_system(
            proposals(4),
            muteness="timeout",
            muteness_timeout=2.0,
            seed=11,
            delay_model=UniformDelay(0.5, 2.5),
        )
        system.run(max_time=5_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        assert not check_detection(system).false_positives


class TestProtocolInternals:
    def test_certificates_accumulate_and_reset(self):
        system = build_transformed_system(proposals(4), seed=12)
        system.run()
        process = system.processes[1]
        # After deciding in round 1, current_cert holds the quorum.
        assert len(process.current_cert.senders()) >= system.params.quorum - 1

    def test_est_cert_well_formed_at_decision(self):
        from repro.consensus.certification import est_cert_problems

        system = build_transformed_system(proposals(4), seed=13)
        system.run()
        for process in system.processes:
            problems = est_cert_problems(
                process.est_cert,
                process.decision,
                system.params,
                process.authority.signature_valid,
            )
            assert problems == [], problems

    def test_vector_built_trace_event(self):
        system = build_transformed_system(proposals(4), seed=14)
        system.run()
        assert system.world.trace.count("vector-built") == 4

    def test_decide_relay_quiesces(self):
        # The DECIDE relay must not echo forever.
        system = build_transformed_system(proposals(4), seed=15)
        result = system.run(max_events=100_000)
        assert result.quiescent()


class TestAblationConfig:
    def test_ablated_signature_module_admits_unsigned_envelopes(self):
        config = ModuleConfig.full().without("signature")
        system = build_transformed_system(proposals(4), config=config, seed=16)
        system.run()
        # Correct-only run: disabling checks loses nothing here.
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_each_ablation_still_works_without_faults(self):
        from repro.core.modules import ABLATABLE_MODULES

        for module in ABLATABLE_MODULES:
            config = ModuleConfig.full().without(module)
            system = build_transformed_system(proposals(4), config=config, seed=17)
            system.run(max_time=3_000)
            report = check_vector_consensus(system)
            assert report.all_hold, (module, report.violations)
