"""Unit tests: the observability layer (registry, export, report, CLI).

Pins the acceptance properties of the layer:

* fixed-seed runs yield fixed, known counter values;
* exporting the same run twice is byte-identical, and an exported
  artifact round-trips (export -> parse -> re-export equal);
* every one of the five Figure-1 modules reports activity under the
  attack gallery;
* ``python -m repro report`` exits 0 on a fresh artifact.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.run_report import RunReport
from repro.byzantine import transformed_attack
from repro.cli import main
from repro.observability import (
    MODULE_CERTIFICATION,
    MODULE_MONITOR,
    MODULE_MUTENESS,
    MODULE_PROTOCOL,
    MODULE_SIGNATURE,
    NULL_METRICS,
    PAPER_MODULES,
    SCHEMA_VERSION,
    MetricsRegistry,
    artifact_to_lines,
    parse_lines,
    read_run_jsonl,
    run_to_lines,
    write_run_jsonl,
)
from repro.observability.export import ArtifactError
from repro.systems import build_transformed_system


def proposals(n):
    return [f"v{i}" for i in range(n)]


def run_system(seed=7, attack=None, **kwargs):
    byzantine = transformed_attack(3, attack) if attack else None
    system = build_transformed_system(
        proposals(4), byzantine=byzantine, seed=seed, **kwargs
    )
    system.run()
    return system


class TestRegistry:
    def test_counter_identity_and_totals(self):
        reg = MetricsRegistry()
        reg.inc("protocol", "rounds_started", pid=0, round=1)
        reg.inc("protocol", "rounds_started", pid=1, round=1)
        reg.inc("protocol", "rounds_started", pid=0, round=2)
        assert reg.counter("protocol", "rounds_started", pid=0, round=1) == 1
        assert reg.counter_total("protocol", "rounds_started") == 3
        assert reg.rounds_observed() == [1, 2]
        assert reg.counters_for_round(1) == {("protocol", "rounds_started"): 2}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            reg.observe("network", "delivery_latency", value)
        ((key, summary),) = list(reg.iter_histograms())
        assert key == ("network", "delivery_latency", None, None)
        assert summary == [3, 6.0, 1.0, 3.0]

    def test_gauge_max(self):
        reg = MetricsRegistry()
        reg.gauge_max("scheduler", "queue_depth_max", 5)
        reg.gauge_max("scheduler", "queue_depth_max", 3)
        assert dict(reg.iter_gauges()) == {
            ("scheduler", "queue_depth_max", None, None): 5
        }

    def test_scope_binds_module_and_pid(self):
        reg = MetricsRegistry()
        scope = reg.scope("signature", pid=2)
        scope.inc("messages_signed")
        assert reg.counter("signature", "messages_signed", pid=2) == 1

    def test_profiles_excluded_from_equality(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.profile_observe("signature", "verify", 0.5)
        assert left == right
        right.inc("protocol", "decisions")
        assert left != right

    def test_null_metrics_accepts_both_shapes(self):
        NULL_METRICS.inc("protocol", "decisions", pid=0, round=1)
        NULL_METRICS.inc("decisions")
        with NULL_METRICS.span("anything"):
            pass
        assert NULL_METRICS.scope("protocol", 1) is NULL_METRICS


class TestDeterministicCounters:
    def test_fixed_seed_fixed_counters(self):
        system = run_system(seed=7)
        metrics = system.world.metrics
        # n=4, failure-free: every process signs INIT + (coordinator)
        # CURRENT / relays + DECIDE; all 48 deliveries verify.
        assert metrics.counter_total(MODULE_SIGNATURE, "messages_verified") == 48
        assert metrics.counter_total(MODULE_SIGNATURE, "messages_signed") == 12
        assert metrics.counter_total(MODULE_PROTOCOL, "decisions") == 4
        assert metrics.counter_total(MODULE_PROTOCOL, "rounds_started") == 4
        assert (
            metrics.counter_total(MODULE_MONITOR, "automaton_transitions") == 36
        )

    def test_same_seed_equal_registries(self):
        assert run_system(seed=11).world.metrics == run_system(seed=11).world.metrics

    def test_different_seeds_may_differ_without_error(self):
        # Not asserting inequality (delays can coincide) — only that both
        # runs produce complete, well-formed registries.
        for seed in (1, 2):
            totals = run_system(seed=seed).world.metrics.totals_by_module()
            assert totals[MODULE_PROTOCOL]["decisions"] == 4


class TestExportRoundTrip:
    def test_double_export_byte_identical(self):
        lines_a = "\n".join(
            run_to_lines(
                run_system(seed=3).world.trace,
                run_system(seed=3).world.metrics,
                meta={"seed": 3},
            )
        )
        system = run_system(seed=3)
        lines_b = "\n".join(
            run_to_lines(system.world.trace, system.world.metrics, meta={"seed": 3})
        )
        assert lines_a == lines_b

    def test_round_trip_preserves_everything(self, tmp_path):
        system = run_system(seed=5, attack="corrupt-vector")
        path = tmp_path / "run.jsonl"
        write_run_jsonl(
            path, system.world.trace, system.world.metrics, meta={"seed": 5}
        )
        artifact = read_run_jsonl(path)
        assert artifact.schema == SCHEMA_VERSION
        assert artifact.meta == {"seed": 5}
        assert artifact.metrics == system.world.metrics
        assert len(artifact.events) == len(list(system.world.trace))
        # Re-serialising the parsed artifact reproduces the file bytes.
        assert "\n".join(artifact_to_lines(artifact)) + "\n" == path.read_text()

    def test_write_to_handle(self):
        system = run_system(seed=2)
        buffer = io.StringIO()
        write_run_jsonl(buffer, system.world.trace, system.world.metrics)
        parsed = parse_lines(buffer.getvalue().splitlines())
        assert parsed.metrics == system.world.metrics

    def test_header_line_is_first_and_versioned(self):
        system = run_system(seed=2)
        first = next(
            iter(run_to_lines(system.world.trace, system.world.metrics))
        )
        header = json.loads(first)
        assert header["kind"] == "header"
        assert header["schema"] == SCHEMA_VERSION

    def test_parse_rejects_garbage(self):
        with pytest.raises(ArtifactError):
            parse_lines(["not json"])
        with pytest.raises(ArtifactError):
            parse_lines([json.dumps({"kind": "header", "schema": "other/v1"})])
        with pytest.raises(ArtifactError):
            parse_lines([json.dumps({"kind": "metric", "metric": "counter"})[:-2]])
        with pytest.raises(ArtifactError):
            parse_lines([])  # no header


class TestPaperModuleAttribution:
    def test_every_module_active_under_attacks(self):
        # Two gallery attacks together exercise all five Figure-1 modules
        # (a mute peer drives the ◇M counters; a corrupted vector drives
        # signature/monitor/certification rejections).
        activity: dict[str, float] = {m: 0 for m in PAPER_MODULES}
        for attack, kwargs in (
            ("mute", {"muteness": "timeout"}),
            ("corrupt-vector", {}),
        ):
            report = RunReport.from_system(run_system(seed=7, attack=attack, **kwargs))
            for module, value in report.paper_module_activity().items():
                activity[module] += value
        assert all(activity[module] > 0 for module in PAPER_MODULES), activity

    def test_certification_rejections_counted(self):
        system = run_system(seed=7, attack="corrupt-vector")
        metrics = system.world.metrics
        assert metrics.counter_total(MODULE_CERTIFICATION, "certificates_rejected") > 0
        assert metrics.counter_total(MODULE_MONITOR, "messages_rejected") > 0
        assert metrics.counter_total(MODULE_MUTENESS, "suspicions_raised") > 0


class TestRunReport:
    def test_report_tables_and_json(self):
        report = RunReport.from_system(run_system(seed=7), meta={"seed": 7})
        text = report.render()
        assert "module totals" in text
        assert "per-round counters" in text
        assert "protocol" in text
        document = report.to_json()
        assert document["meta"] == {"seed": 7}
        assert document["module_totals"]["protocol"]["decisions"] == 4
        json.dumps(document)  # JSON-ready end to end

    def test_gauges_and_histograms_render(self):
        # Regression: RunReport used to drop gauges and histograms on
        # the floor — only counters made it into the tables/JSON.
        report = RunReport.from_system(run_system(seed=7))
        text = report.render()
        assert "gauges" in text
        assert "histograms" in text
        assert "queue_depth_max" in text
        assert "certificate_entries" in text
        document = report.to_json()
        gauge_names = {row["name"] for row in document["gauges"]}
        histo_names = {row["name"] for row in document["histograms"]}
        assert "queue_depth_max" in gauge_names
        assert "certificate_entries" in histo_names
        for row in document["histograms"]:
            assert row["min"] <= row["mean"] <= row["max"] or row["count"] == 0
        json.dumps(document)

    def test_from_artifact_matches_from_system(self, tmp_path):
        system = run_system(seed=9)
        path = tmp_path / "run.jsonl"
        write_run_jsonl(path, system.world.trace, system.world.metrics)
        from_file = RunReport.from_artifact(read_run_jsonl(path))
        from_live = RunReport.from_system(system)
        assert from_file.module_totals == from_live.module_totals
        assert from_file.round_counters == from_live.round_counters
        assert from_file.event_counts == from_live.event_counts
        assert from_file.gauges == from_live.gauges
        assert from_file.histograms == from_live.histograms


class TestCli:
    def test_run_then_report_exits_zero(self, tmp_path, capsys):
        artifact = tmp_path / "run.jsonl"
        assert main(["run", "--n", "4", "--seed", "3",
                     "--metrics-out", str(artifact)]) == 0
        assert artifact.exists()
        capsys.readouterr()
        assert main(["report", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "module totals" in out
        assert "signature" in out

    def test_report_json_mode(self, tmp_path, capsys):
        artifact = tmp_path / "run.jsonl"
        main(["run", "--n", "4", "--seed", "3", "--metrics-out", str(artifact)])
        capsys.readouterr()
        assert main(["report", str(artifact), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["module_totals"]["protocol"]["decisions"] == 4

    def test_cli_exports_are_deterministic(self, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            main(["run", "--n", "4", "--seed", "3",
                  "--attack", "3:corrupt-vector", "--metrics-out", str(path)])
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]
