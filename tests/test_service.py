"""Tests: the BFT replicated-service runtime (repro.service).

Covers the tentpole end to end — clients, batching, pipelining,
checkpoint certificates, log compaction and state transfer — plus the
acceptance runs from the issue: >= 200 commands over >= 3 certified
checkpoints under a Byzantine replica on a lossy wire, and a recovery
scenario whose restarted replica completes a verified state transfer
and commits new slots.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.certificates import Certificate, SignedMessage
from repro.errors import ConfigurationError
from repro.observability.registry import MODULE_SERVICE
from repro.replication.kvstore import Command, KeyValueStore
from repro.service import (
    CheckpointCertificate,
    ServiceConfig,
    ServiceScenario,
    build_service_system,
    certificate_valid,
    evaluate_service_outcome,
    run_service_scenario,
    service_digest,
    service_preset,
)
from repro.service.messages import Checkpoint


def run_system(config, **kwargs):
    system = build_service_system(config, **kwargs)
    system.run(max_time=2_500.0)
    return system


class TestServiceConfig:
    def test_validate_accepts_defaults(self):
        ServiceConfig().validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("window", 0),
            ("checkpoint_interval", 0),
            ("checkpoint_interval", -2),
            ("batch_size", 0),
            ("batch_delay", 0.0),
            ("mode", "bursty"),
            ("rate", 0.0),
            ("requests_per_client", 0),
            ("request_timeout", 0.0),
            ("n_clients", 0),
        ],
    )
    def test_validate_rejects(self, field, value):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(ServiceConfig(), **{field: value}).validate()


class TestServiceDigest:
    def test_digest_covers_store_and_executed(self):
        store = KeyValueStore().apply_all([Command("set", "x", 1)])
        same = KeyValueStore().apply_all([Command("set", "x", 1)])
        assert service_digest(store, {(5, 0)}) == service_digest(same, {(5, 0)})
        assert service_digest(store, {(5, 0)}) != service_digest(same, {(5, 1)})
        store.apply(Command("set", "x", 2))
        assert service_digest(store, {(5, 0)}) != service_digest(same, {(5, 0)})


class TestCheckpointCertificates:
    def make_authorities(self, config):
        system = build_service_system(config)
        return [replica._ckpt_authority for replica in system.replicas]

    def test_f_plus_one_matching_votes_verify(self):
        config = ServiceConfig(seed=5)
        authorities = self.make_authorities(config)
        f = config.params().f
        votes = [
            authority.make(Checkpoint(sender=pid, count=4, digest="d"))
            for pid, authority in enumerate(authorities[: f + 1])
        ]
        certificate = CheckpointCertificate(
            count=4, digest="d", certificate=Certificate(tuple(votes))
        )
        assert certificate_valid(certificate, authorities[0], f)
        assert certificate.signers == frozenset(range(f + 1))

    def test_too_few_or_mismatched_votes_rejected(self):
        config = ServiceConfig(seed=5)
        authorities = self.make_authorities(config)
        f = config.params().f
        short = CheckpointCertificate(
            count=4,
            digest="d",
            certificate=Certificate(
                (authorities[0].make(Checkpoint(sender=0, count=4, digest="d")),)
            ),
        )
        assert not certificate_valid(short, authorities[0], f)
        mixed = CheckpointCertificate(
            count=4,
            digest="d",
            certificate=Certificate(
                tuple(
                    authorities[pid].make(
                        Checkpoint(sender=pid, count=4, digest=digest)
                    )
                    for pid, digest in ((0, "d"), (1, "other"))
                )
            ),
        )
        assert not certificate_valid(mixed, authorities[0], f)

    def test_forged_or_malformed_votes_rejected_without_crash(self):
        from repro.core.certificates import EMPTY_CERTIFICATE

        config = ServiceConfig(seed=5)
        authorities = self.make_authorities(config)
        f = config.params().f
        votes = list(
            authorities[pid].make(Checkpoint(sender=pid, count=4, digest="d"))
            for pid in range(f + 1)
        )
        # A vote with a forged signature poisons the whole certificate
        # (certificates are assembled from individually verified votes, so
        # a valid one never contains an invalid entry).
        forged = CheckpointCertificate(
            count=4,
            digest="d",
            certificate=Certificate(
                tuple(votes)
                + (
                    SignedMessage(
                        body=Checkpoint(sender=f + 1, count=4, digest="d"),
                        cert=EMPTY_CERTIFICATE,
                        signature="sig:forged",
                    ),
                )
            ),
        )
        assert not certificate_valid(forged, authorities[0], f)

    def test_malformed_vote_rejected_without_crash(self):
        # A Byzantine peer can ship a structurally broken vote straight
        # to a replica; it must be dropped, never crash the process.
        system = build_service_system(ServiceConfig(seed=5))
        system.world.start()
        replica = system.replicas[0]
        junk = SignedMessage(
            body=Checkpoint(sender=3, count=2, digest="d"),
            cert=None,  # type: ignore[arg-type]
            signature="sig:junk",
        )
        replica.on_message(3, junk)
        assert replica.stable is None
        rejected = system.world.metrics.counter(
            MODULE_SERVICE, "checkpoint_votes_rejected", pid=0
        )
        assert rejected == 1


class TestServiceBaseline:
    def test_all_requests_complete_and_stores_converge(self):
        config = ServiceConfig(
            n_clients=2, requests_per_client=12, seed=11, batch_size=4
        )
        system = run_system(config)
        assert system.all_clients_done()
        assert system.committed_commands() == 24
        digests = {
            service_digest(
                system.replicas[pid].store, system.replicas[pid].executed
            )
            for pid in system.correct_pids
        }
        assert len(digests) == 1

    def test_checkpoints_agree_and_certify(self):
        config = ServiceConfig(
            n_clients=2, requests_per_client=16, seed=12, checkpoint_interval=2
        )
        system = run_system(config)
        assert system.checkpoints_agree()
        assert system.certified_checkpoints() >= 3
        for pid in system.correct_pids:
            replica = system.replicas[pid]
            assert replica.stable is not None
            assert certificate_valid(
                replica.stable, replica._ckpt_authority, config.params().f
            )

    def test_log_compaction_truncates_below_stable(self):
        config = ServiceConfig(
            n_clients=2, requests_per_client=16, seed=13, checkpoint_interval=2
        )
        system = run_system(config)
        for pid in system.correct_pids:
            replica = system.replicas[pid]
            assert replica.stable is not None
            assert replica.base_slot == replica.stable.count
            assert all(slot >= replica.base_slot for slot, _, _ in replica.log)
            assert all(s >= replica.base_slot for s in replica.engines)

    def test_pipelining_window_respected(self):
        config = ServiceConfig(
            n_clients=3,
            requests_per_client=10,
            seed=14,
            batch_size=2,
            window=2,
            rate=5.0,
        )
        system = build_service_system(config)
        max_open = 0
        replica = system.replicas[0]
        original = replica._ensure_engine

        def spying(slot):
            nonlocal max_open
            engine = original(slot)
            max_open = max(max_open, replica._open_slots())
            return engine

        replica._ensure_engine = spying
        system.run(max_time=2_500.0)
        # The window bounds slots *opened by batching*; envelope-driven
        # engine creation (peers already proposing) may add a few more.
        assert max_open <= config.window + config.n_replicas
        assert system.all_clients_done()

    def test_batches_fill_under_load(self):
        config = ServiceConfig(
            n_clients=3, requests_per_client=12, seed=15, batch_size=4, rate=10.0
        )
        system = run_system(config)
        occupancy = [
            total / count
            for (module, name, _pid, _round), (count, total, _low, _high)
            in system.world.metrics.iter_histograms()
            if module == MODULE_SERVICE and name == "batch_occupancy"
        ]
        assert occupancy and max(occupancy) > 1.0

    def test_closed_loop_clients_complete(self):
        config = ServiceConfig(
            mode="closed", think=0.5, n_clients=3, requests_per_client=8, seed=16
        )
        system = run_system(config)
        assert system.all_clients_done()
        assert system.committed_commands() == 24

    def test_client_latencies_recorded(self):
        config = ServiceConfig(n_clients=2, requests_per_client=10, seed=17)
        system = run_system(config)
        latencies = system.client_latencies()
        assert len(latencies) == 20
        assert all(latency > 0 for latency in latencies)

    def test_deterministic_replay(self):
        def run(seed):
            scenario = ServiceScenario(
                seed=seed, requests_per_client=10, min_commands=20
            )
            return run_service_scenario(scenario)

        assert run(21) == run(21)


class TestServiceAcceptance:
    """The issue's acceptance runs (sized-down only in wall-clock)."""

    def test_200_commands_3_checkpoints_byzantine_lossy(self):
        scenario = ServiceScenario(
            name="acceptance",
            seed=7,
            n_clients=3,
            requests_per_client=70,
            rate=3.0,
            batch_size=8,
            window=3,
            checkpoint_interval=3,
            attacks=((3, "corrupt-vector"),),
            loss=0.05,
            transport="reliable",
            min_commands=200,
            min_checkpoints=3,
        )
        record = run_service_scenario(scenario)
        assert record["verdict"] == "pass", record["violations"]
        assert record["service"]["committed_commands"] >= 200
        assert record["service"]["certified_checkpoints"] >= 3

    def test_recovery_completes_state_transfer_and_rejoins(self):
        scenario = ServiceScenario(
            name="recovery",
            seed=4,
            n_clients=2,
            rate=0.4,
            requests_per_client=30,
            checkpoint_interval=2,
            recoveries=((2, 25.0, 60.0),),
            min_commands=60,
            min_checkpoints=3,
        )
        system = scenario.build()
        system.run(max_time=scenario.max_time)
        verdict, violations = evaluate_service_outcome(scenario, system)
        assert verdict == "pass", violations
        replica = system.replicas[2]
        assert replica.downs == 1 and replica.restarts == 1
        assert replica.state_transfers_completed
        _when, installed, _frontier = replica.state_transfers_completed[-1]
        assert replica.next_apply > installed  # committed new slots after
        # The certificate protecting the installed snapshot verifies.
        assert replica.stable is not None
        assert certificate_valid(
            replica.stable,
            replica._ckpt_authority,
            scenario.service_config().params().f,
        )
        # The recovery story is visible in the trace.
        kinds = {event.kind for event in system.world.trace}
        for kind in (
            "service_down",
            "service_restart",
            "state_transfer_start",
            "snapshot_installed",
            "state_transfer_complete",
        ):
            assert kind in kinds


class TestServiceScenarioSurface:
    def test_config_round_trip(self):
        scenario = service_preset("smoke")[2]
        again = ServiceScenario.from_config(scenario.to_config())
        assert again == scenario
        assert again.scenario_id == scenario.scenario_id

    def test_validate_rejects_bad_plans(self):
        with pytest.raises(ConfigurationError):
            ServiceScenario(attacks=((9, "corrupt-vector"),)).validate()
        with pytest.raises(ConfigurationError):
            ServiceScenario(attacks=((1, "no-such-attack"),)).validate()
        with pytest.raises(ConfigurationError):
            ServiceScenario(recoveries=((1, 30.0, 10.0),)).validate()
        with pytest.raises(ConfigurationError):
            ServiceScenario(
                attacks=((1, "mute"),), recoveries=((1, 5.0, 10.0),)
            ).validate()
        with pytest.raises(ConfigurationError):
            ServiceScenario(loss=0.1).validate()  # lossy without transport
        with pytest.raises(ConfigurationError):
            ServiceScenario(
                attacks=((1, "mute"),), recoveries=((2, 5.0, 10.0),)
            ).validate()  # two faulty replicas exceed F=1 at n=4

    def test_smoke_preset_all_pass(self):
        for scenario in service_preset("smoke"):
            record = run_service_scenario(scenario)
            assert record["verdict"] == "pass", (
                scenario.name,
                record["violations"],
            )


class TestServiceCli:
    def test_run_exits_zero(self, capsys):
        assert (
            main(
                ["service", "run", "--requests", "8", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "commands committed" in out

    def test_invalid_window_exits_two(self, capsys):
        assert main(["service", "run", "--window", "0"]) == 2
        assert "window" in capsys.readouterr().err

    def test_invalid_checkpoint_interval_exits_two(self, capsys):
        assert main(["service", "run", "--checkpoint-interval", "0"]) == 2
        assert "checkpoint interval" in capsys.readouterr().err

    def test_malformed_recover_exits_two(self, capsys):
        assert main(["service", "run", "--recover", "1:zz:5"]) == 2
        assert "--recover" in capsys.readouterr().err

    def test_unknown_preset_exits_two(self, capsys):
        assert main(["service", "campaign", "--preset", "zzz"]) == 2
        assert "preset" in capsys.readouterr().err

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "service.json"
        code = main(
            [
                "service", "run", "--requests", "6", "--seed", "2",
                "--json", str(target),
            ]
        )
        assert code == 0
        import json

        record = json.loads(target.read_text())
        assert record["verdict"] == "pass"
        assert record["service"]["committed_commands"] == 12
