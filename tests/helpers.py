"""Hand-crafting helpers shared by the test suite."""

from __future__ import annotations

from repro.core.certificates import (
    Certificate,
    CertificationAuthority,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.core.specs import SystemParameters
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.messages.consensus import Init, NULL, VCurrent, VNext, Vector


class SignedWorkbench:
    """Everything needed to hand-craft signed, certified messages in tests."""

    def __init__(self, n: int, f: int | None = None, seed: int = 0) -> None:
        self.params = SystemParameters.for_n(n, f=f)
        self.key_authority = KeyAuthority(n, seed=seed)
        self.scheme = SignatureScheme(self.key_authority)
        self.authorities = [
            CertificationAuthority(self.scheme, self.key_authority.signer_for(pid))
            for pid in range(n)
        ]

    @property
    def n(self) -> int:
        return self.params.n

    @property
    def quorum(self) -> int:
        return self.params.quorum

    def verify(self, message: SignedMessage) -> bool:
        return self.authorities[0].signature_valid(message)

    # -- message builders --------------------------------------------------------

    def signed_init(self, pid: int, value: object | None = None) -> SignedMessage:
        payload = f"v{pid}" if value is None else value
        return self.authorities[pid].make(
            Init(sender=pid, value=payload), EMPTY_CERTIFICATE
        )

    def init_quorum(self, senders: list[int] | None = None) -> list[SignedMessage]:
        """Signed INITs with default values from the first n-F processes."""
        chosen = senders if senders is not None else list(range(self.quorum))
        return [self.signed_init(pid) for pid in chosen]

    def vector_for(self, senders: list[int]) -> Vector:
        """The vector the default-value INITs of ``senders`` witness."""
        values = [NULL] * self.n
        for pid in senders:
            values[pid] = f"v{pid}"
        return tuple(values)

    def coordinator_current(
        self,
        round_number: int = 1,
        senders: list[int] | None = None,
        next_votes: list[SignedMessage] | None = None,
    ) -> SignedMessage:
        """A well-formed coordinator CURRENT for ``round_number``."""
        from repro.consensus.hurfin_raynal import coordinator_of

        coordinator = coordinator_of(round_number, self.n)
        chosen = senders if senders is not None else list(range(self.quorum))
        inits = self.init_quorum(chosen)
        cert_entries = tuple(inits) + tuple(next_votes or ())
        return self.authorities[coordinator].make(
            VCurrent(
                sender=coordinator,
                round=round_number,
                est_vect=self.vector_for(chosen),
            ),
            Certificate(cert_entries),
        )

    def next_quorum(self, round_number: int) -> list[SignedMessage]:
        """Light signed NEXTs of ``round_number`` from the first n-F pids."""
        votes = []
        for pid in range(self.quorum):
            full = self.authorities[pid].make(
                VNext(sender=pid, round=round_number), EMPTY_CERTIFICATE
            )
            votes.append(full.light())
        return votes

    def relay_current(self, relayer: int, inner: SignedMessage) -> SignedMessage:
        """A well-formed relayed CURRENT wrapping ``inner``."""
        assert isinstance(inner.body, VCurrent)
        return self.authorities[relayer].make(
            VCurrent(
                sender=relayer,
                round=inner.body.round,
                est_vect=inner.body.est_vect,
            ),
            Certificate((inner,)),
        )


