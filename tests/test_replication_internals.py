"""Unit tests: replicated-log internals (routing, timers, domains)."""

from __future__ import annotations

import pytest

from repro.core.specs import SystemParameters
from repro.replication import (
    Command,
    NOOP,
    ReplicatedLogProcess,
    SlotEnvelope,
    build_replicated_system,
)
from repro.sim.network import FixedDelay
from repro.sim.world import World


def make_system(slots=2, n=4, seed=0, commands_per=None):
    commands = [
        [
            Command("set", f"k{pid}-{i}", i)
            for i in range(commands_per if commands_per is not None else slots)
        ]
        for pid in range(n)
    ]
    return build_replicated_system(
        commands, target_slots=slots, seed=seed, delay_model=FixedDelay(0.4)
    )


class TestRouting:
    def test_non_envelope_traffic_ignored(self):
        system = make_system()
        system.world.start()
        replica = system.replicas[0]
        replica.on_message(1, "stray-payload")
        assert replica.log == []

    def test_out_of_range_slots_ignored(self):
        system = make_system(slots=2)
        system.world.start()
        replica = system.replicas[0]
        replica.on_message(1, SlotEnvelope(slot=99, inner="whatever"))
        replica.on_message(1, SlotEnvelope(slot=-1, inner="whatever"))
        assert 99 not in replica.engines
        assert -1 not in replica.engines

    def test_engines_created_lazily_per_slot(self):
        system = make_system(slots=3)
        system.world.start()
        system.world.scheduler.run(max_events=len(system.replicas))  # on_start
        replica = system.replicas[0]
        assert set(replica.engines) == {0}
        system.run()
        assert set(replica.engines) == {0, 1, 2}

    def test_no_engine_beyond_target(self):
        system = make_system(slots=2)
        system.run()
        for replica in system.replicas:
            assert max(replica.engines) == 1


class TestTimers:
    def test_slot_timers_reach_their_engine(self):
        # The suspicion-poll timer of a slot engine must fire with its
        # unprefixed name inside that engine (via the timer proxy).
        system = make_system(slots=1)
        system.run()
        # If timers had been misrouted the engines would never evaluate
        # their suspicion guards; a completed run is the observable proof,
        # plus: engines were bound to slot envs, not the real one.
        replica = system.replicas[0]
        engine = replica.engines[0]
        assert engine.decided
        assert engine.env is not replica.env


class TestCommandQueue:
    def test_noop_proposed_when_queue_empty(self):
        system = make_system(slots=3, commands_per=1)
        system.run()
        replica = system.replicas[0]
        assert replica._proposed[1] == NOOP or replica._proposed[2] == NOOP

    def test_noops_filtered_from_command_log(self):
        system = make_system(slots=3, commands_per=1)
        system.run()
        for replica in system.replicas:
            assert NOOP not in replica.command_log()

    def test_finished_flag(self):
        system = make_system(slots=2)
        assert not system.replicas[0].finished
        system.run()
        assert all(r.finished for r in system.replicas)

    def test_log_entries_tagged_with_slot_and_proposer(self):
        system = make_system(slots=1)
        system.run()
        for slot, proposer, command in system.replicas[0].log:
            assert slot == 0
            assert 0 <= proposer < 4
            assert isinstance(command, Command)
            assert command.key.startswith(f"k{proposer}-")


class TestDeliveryRegressions:
    def test_duplicate_envelope_delivery_is_idempotent(self):
        # Re-delivering traffic to a decided slot must not re-append.
        system = make_system(slots=2)
        system.run()
        replica = system.replicas[0]
        log_before = list(replica.log)
        applied_before = replica.applied_slots
        # A decided engine ignores duplicates; the harvest path must too.
        engine = replica.engines[0]
        assert engine.decided
        replica.on_message(
            1, SlotEnvelope(slot=0, inner="late-duplicate-garbage")
        )
        replica._harvest(0)
        assert replica.log == log_before
        assert replica.applied_slots == applied_before

    def test_duplicating_links_do_not_break_convergence(self):
        from repro.sim.network import LinkModel

        commands = [
            [Command("set", f"k{pid}-{i}", i) for i in range(2)]
            for pid in range(4)
        ]
        system = build_replicated_system(
            commands,
            target_slots=2,
            seed=13,
            delay_model=FixedDelay(0.4),
            link_model=LinkModel(duplication=0.3),
        )
        system.run(max_time=2_000)
        assert system.converged()

    def test_out_of_order_decision_applies_in_slot_order(self):
        # Slot 2 deciding before slots 0/1 must wait in the buffer; the
        # log is appended strictly in slot order regardless.
        system = make_system(slots=3)
        system.world.start()
        replica = system.replicas[0]
        vector2 = (Command("set", "late", 2),) + ("<null>",) * 3
        replica._decided.add(2)
        replica._pending_apply[2] = vector2
        replica._apply_ready()
        assert replica.log == []  # buffered: slots 0 and 1 still open
        assert replica.applied_slots == 0
        for slot in (1, 0):  # decide the rest, still out of order
            replica._decided.add(slot)
            replica._pending_apply[slot] = (
                Command("set", f"s{slot}", slot),
            ) + ("<null>",) * 3
        replica._apply_ready()
        assert replica.applied_slots == 3
        assert [entry[0] for entry in replica.log] == [0, 1, 2]
        assert [entry[2].key for entry in replica.log] == ["s0", "s1", "late"]


class TestSystemSurface:
    def test_correct_pids_excludes_byzantine(self):
        from repro.byzantine.transformed_attacks import TCorruptVectorAttacker

        def corrupt(pid, proposal, params, authority, detector, config):
            return TCorruptVectorAttacker(
                proposal=proposal, params=params, authority=authority,
                detector=detector, config=config,
            )

        system = build_replicated_system(
            [[Command("set", str(pid), pid)] for pid in range(4)],
            target_slots=1,
            byzantine={2: corrupt},
        )
        assert system.correct_pids == frozenset({0, 1, 3})

    def test_converged_false_before_run(self):
        system = make_system()
        assert not system.converged()

    def test_deterministic_replay(self):
        def run(seed):
            system = make_system(seed=seed)
            system.run()
            return [tuple(map(repr, log)) for log in system.correct_logs()]

        assert run(11) == run(11)
