"""Unit tests: replicated-log internals (routing, timers, domains)."""

from __future__ import annotations

import pytest

from repro.core.specs import SystemParameters
from repro.replication import (
    Command,
    NOOP,
    ReplicatedLogProcess,
    SlotEnvelope,
    build_replicated_system,
)
from repro.sim.network import FixedDelay
from repro.sim.world import World


def make_system(slots=2, n=4, seed=0, commands_per=None):
    commands = [
        [
            Command("set", f"k{pid}-{i}", i)
            for i in range(commands_per if commands_per is not None else slots)
        ]
        for pid in range(n)
    ]
    return build_replicated_system(
        commands, target_slots=slots, seed=seed, delay_model=FixedDelay(0.4)
    )


class TestRouting:
    def test_non_envelope_traffic_ignored(self):
        system = make_system()
        system.world.start()
        replica = system.replicas[0]
        replica.on_message(1, "stray-payload")
        assert replica.log == []

    def test_out_of_range_slots_ignored(self):
        system = make_system(slots=2)
        system.world.start()
        replica = system.replicas[0]
        replica.on_message(1, SlotEnvelope(slot=99, inner="whatever"))
        replica.on_message(1, SlotEnvelope(slot=-1, inner="whatever"))
        assert 99 not in replica.engines
        assert -1 not in replica.engines

    def test_engines_created_lazily_per_slot(self):
        system = make_system(slots=3)
        system.world.start()
        system.world.scheduler.run(max_events=len(system.replicas))  # on_start
        replica = system.replicas[0]
        assert set(replica.engines) == {0}
        system.run()
        assert set(replica.engines) == {0, 1, 2}

    def test_no_engine_beyond_target(self):
        system = make_system(slots=2)
        system.run()
        for replica in system.replicas:
            assert max(replica.engines) == 1


class TestTimers:
    def test_slot_timers_reach_their_engine(self):
        # The suspicion-poll timer of a slot engine must fire with its
        # unprefixed name inside that engine (via the timer proxy).
        system = make_system(slots=1)
        system.run()
        # If timers had been misrouted the engines would never evaluate
        # their suspicion guards; a completed run is the observable proof,
        # plus: engines were bound to slot envs, not the real one.
        replica = system.replicas[0]
        engine = replica.engines[0]
        assert engine.decided
        assert engine.env is not replica.env


class TestCommandQueue:
    def test_noop_proposed_when_queue_empty(self):
        system = make_system(slots=3, commands_per=1)
        system.run()
        replica = system.replicas[0]
        assert replica._proposed[1] == NOOP or replica._proposed[2] == NOOP

    def test_noops_filtered_from_command_log(self):
        system = make_system(slots=3, commands_per=1)
        system.run()
        for replica in system.replicas:
            assert NOOP not in replica.command_log()

    def test_finished_flag(self):
        system = make_system(slots=2)
        assert not system.replicas[0].finished
        system.run()
        assert all(r.finished for r in system.replicas)

    def test_log_entries_tagged_with_slot_and_proposer(self):
        system = make_system(slots=1)
        system.run()
        for slot, proposer, command in system.replicas[0].log:
            assert slot == 0
            assert 0 <= proposer < 4
            assert isinstance(command, Command)
            assert command.key.startswith(f"k{proposer}-")


class TestSystemSurface:
    def test_correct_pids_excludes_byzantine(self):
        from repro.byzantine.transformed_attacks import TCorruptVectorAttacker

        def corrupt(pid, proposal, params, authority, detector, config):
            return TCorruptVectorAttacker(
                proposal=proposal, params=params, authority=authority,
                detector=detector, config=config,
            )

        system = build_replicated_system(
            [[Command("set", str(pid), pid)] for pid in range(4)],
            target_slots=1,
            byzantine={2: corrupt},
        )
        assert system.correct_pids == frozenset({0, 1, 3})

    def test_converged_false_before_run(self):
        system = make_system()
        assert not system.converged()

    def test_deterministic_replay(self):
        def run(seed):
            system = make_system(seed=seed)
            system.run()
            return [tuple(map(repr, log)) for log in system.correct_logs()]

        assert run(11) == run(11)
