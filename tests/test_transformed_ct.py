"""Tests: the second case study — transformed Chandra–Toueg."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.properties import check_detection, check_vector_consensus
from repro.byzantine.ct_attacks import CT_ATTACKS, ct_attack
from repro.consensus.certification_ct import (
    ack_problems,
    build_justification,
    decide_problems,
    estimate_problems,
    propose_problems,
    select_proposal,
)
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE
from repro.errors import ConfigurationError
from repro.messages.ct import CtAck, CtDecide, CtEstimate, CtPropose
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system
from tests.helpers import SignedWorkbench


def proposals(n):
    return [f"v{i}" for i in range(n)]


@pytest.fixture
def bench():
    return SignedWorkbench(4)


def make_estimate(bench, pid, round_number=1, ts=0, senders=None):
    chosen = senders if senders is not None else [0, 1, 2]
    vector = bench.vector_for(chosen)
    cert = Certificate(tuple(bench.init_quorum(chosen)))
    return bench.authorities[pid].make(
        CtEstimate(sender=pid, round=round_number, est_vect=vector, ts=ts),
        cert,
    )


def make_propose(bench, round_number=1):
    coordinator = (round_number - 1) % bench.n
    estimates = [make_estimate(bench, pid, round_number) for pid in range(3)]
    picked = select_proposal(estimates)
    return bench.authorities[coordinator].make(
        CtPropose(
            sender=coordinator,
            round=round_number,
            est_vect=picked.body.est_vect,
        ),
        build_justification(estimates),
    ), estimates


class TestSelectionRule:
    def test_highest_ts_wins(self, bench):
        low = make_estimate(bench, 0, ts=0)
        # Fake a ts=0-vs-ts-like comparison through bodies directly.
        assert select_proposal([low]) is low

    def test_tie_breaks_to_lowest_pid(self, bench):
        a = make_estimate(bench, 2)
        b = make_estimate(bench, 1)
        assert select_proposal([a, b]) is b


class TestCtPredicates:
    def test_ts0_estimate_well_formed(self, bench):
        estimate = make_estimate(bench, 1)
        assert estimate_problems(estimate, bench.params, bench.verify) == []

    def test_estimate_vector_corruption_detected(self, bench):
        honest = make_estimate(bench, 1)
        corrupted = bench.authorities[1].make(
            honest.body.replace(est_vect=tuple("x" for _ in range(4))),
            honest.full_cert(),
        )
        assert estimate_problems(corrupted, bench.params, bench.verify)

    def test_estimate_impossible_ts_detected(self, bench):
        estimate = bench.authorities[1].make(
            CtEstimate(
                sender=1, round=1, est_vect=bench.vector_for([0, 1, 2]), ts=5
            ),
            EMPTY_CERTIFICATE,
        )
        problems = estimate_problems(estimate, bench.params, bench.verify)
        assert any("impossible" in p for p in problems)

    def test_fake_ts_without_propose_detected(self, bench):
        estimate = bench.authorities[1].make(
            CtEstimate(
                sender=1, round=2, est_vect=bench.vector_for([0, 1, 2]), ts=1
            ),
            Certificate(tuple(bench.init_quorum([0, 1, 2]))),
        )
        problems = estimate_problems(estimate, bench.params, bench.verify)
        assert any("PROPOSE" in p for p in problems)

    def test_adopted_estimate_well_formed(self, bench):
        proposal, _ = make_propose(bench, 1)
        adopted = bench.authorities[2].make(
            CtEstimate(
                sender=2, round=2, est_vect=proposal.body.est_vect, ts=1
            ),
            Certificate((proposal,)),
        )
        assert estimate_problems(adopted, bench.params, bench.verify) == []

    def test_propose_well_formed(self, bench):
        proposal, _ = make_propose(bench, 1)
        assert propose_problems(proposal, bench.params, bench.verify) == []

    def test_propose_from_non_coordinator_detected(self, bench):
        _, estimates = make_propose(bench, 1)
        picked = select_proposal(estimates)
        rogue = bench.authorities[2].make(
            CtPropose(sender=2, round=1, est_vect=picked.body.est_vect),
            build_justification(estimates),
        )
        problems = propose_problems(rogue, bench.params, bench.verify)
        assert any("coordinator" in p for p in problems)

    def test_corrupted_selection_detected(self, bench):
        _, estimates = make_propose(bench, 1)
        wrong = bench.authorities[0].make(
            CtPropose(sender=0, round=1, est_vect=tuple("x" for _ in range(4))),
            build_justification(estimates),
        )
        problems = propose_problems(wrong, bench.params, bench.verify)
        assert problems

    def test_propose_subquorum_detected(self, bench):
        estimates = [make_estimate(bench, pid) for pid in range(2)]
        picked = select_proposal(estimates)
        thin = bench.authorities[0].make(
            CtPropose(sender=0, round=1, est_vect=picked.body.est_vect),
            build_justification(estimates),
        )
        problems = propose_problems(thin, bench.params, bench.verify)
        assert any("misevaluated phase 2" in p for p in problems)

    def test_ack_well_formed(self, bench):
        proposal, _ = make_propose(bench, 1)
        ack = bench.authorities[2].make(
            CtAck(sender=2, round=1), Certificate((proposal,))
        )
        assert ack_problems(ack, bench.params, bench.verify) == []

    def test_ack_without_propose_detected(self, bench):
        ack = bench.authorities[2].make(CtAck(sender=2, round=1), EMPTY_CERTIFICATE)
        assert ack_problems(ack, bench.params, bench.verify)

    def test_decide_well_formed(self, bench):
        proposal, _ = make_propose(bench, 1)
        acks = [
            bench.authorities[pid]
            .make(CtAck(sender=pid, round=1), Certificate((proposal,)))
            .light()
            for pid in range(3)
        ]
        decide = bench.authorities[1].make(
            CtDecide(sender=1, est_vect=proposal.body.est_vect),
            Certificate((proposal, *acks)),
        )
        assert decide_problems(decide, bench.params, bench.verify) == []

    def test_decide_subquorum_detected(self, bench):
        proposal, _ = make_propose(bench, 1)
        one_ack = (
            bench.authorities[2]
            .make(CtAck(sender=2, round=1), Certificate((proposal,)))
            .light()
        )
        decide = bench.authorities[2].make(
            CtDecide(sender=2, est_vect=proposal.body.est_vect),
            Certificate((proposal, one_ack)),
        )
        problems = decide_problems(decide, bench.params, bench.verify)
        assert any("misevaluated its decision" in p for p in problems)


class TestTransformedCtRuns:
    def test_failure_free(self):
        system = build_transformed_system(proposals(4), base="chandra-toueg", seed=1)
        assert system.run().quiescent()
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_crashed_coordinator(self):
        system = build_transformed_system(
            proposals(4), base="chandra-toueg", crash_at={0: 0.0}, seed=2
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        deciders = [p for p in system.processes if p.pid != 0 and p.decided]
        assert all(p.decision_round >= 2 for p in deciders)

    @pytest.mark.parametrize("n", [4, 7])
    def test_sizes(self, n):
        system = build_transformed_system(proposals(n), base="chandra-toueg", seed=3)
        system.run(max_time=3_000)
        assert check_vector_consensus(system).all_hold

    def test_variant_with_ct_base_rejected(self):
        with pytest.raises(ConfigurationError):
            build_transformed_system(
                proposals(4), base="chandra-toueg", variant="echo-init"
            )

    def test_unknown_base_rejected(self):
        with pytest.raises(ConfigurationError):
            build_transformed_system(proposals(4), base="paxos")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_random_schedules(self, seed):
        system = build_transformed_system(
            proposals(4),
            base="chandra-toueg",
            seed=seed,
            delay_model=UniformDelay(0.1, 2.5),
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations


class TestCtAttackGallery:
    SEATS = {"ct-corrupt-selection": 0, "ct-partial-propose": 0}

    @pytest.mark.parametrize("name", sorted(CT_ATTACKS))
    def test_properties_survive(self, name):
        seat = self.SEATS.get(name, 3)
        system = build_transformed_system(
            proposals(4),
            base="chandra-toueg",
            byzantine=ct_attack(seat, name),
            seed=4,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, (name, report.violations)
        assert check_detection(system).clean

    @pytest.mark.parametrize(
        "name", ["ct-corrupt-estimate", "ct-premature-decide", "ct-spurious-propose"]
    )
    def test_message_visible_attacks_detected(self, name):
        system = build_transformed_system(
            proposals(4),
            base="chandra-toueg",
            byzantine=ct_attack(3, name),
            seed=5,
        )
        system.run(max_time=3_000)
        assert check_detection(system).detected_by_any, name

    def test_corrupt_selection_detected_at_coordinator_seat(self):
        system = build_transformed_system(
            proposals(4),
            base="chandra-toueg",
            byzantine=ct_attack(0, "ct-corrupt-selection"),
            seed=6,
        )
        system.run(max_time=3_000)
        assert check_detection(system).detected_by_any

    def test_fake_timestamp_detected_in_round_two(self):
        # Crash p0 so the run reaches round 2, where the attacker (seat 6)
        # claims an unwitnessed ts=1.
        system = build_transformed_system(
            proposals(7),
            base="chandra-toueg",
            crash_at={0: 0.0},
            byzantine=ct_attack(6, "ct-fake-timestamp"),
            seed=7,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        assert check_detection(system).detected_by_any

    def test_partial_propose_is_healed_by_extraction(self):
        # The timeout ◇M gives the withheld proposal time to travel via
        # the ack certificates (the oracle detector would nack the round
        # away before the proposal is even sent).
        system = build_transformed_system(
            proposals(4),
            base="chandra-toueg",
            byzantine=ct_attack(0, "ct-partial-propose"),
            muteness="timeout",
            seed=8,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        # The starved processes still decided in round 1: extraction from
        # the ack certificates healed the withheld proposal.
        deciders = [p for p in system.processes if p.pid != 0 and p.decided]
        assert any(p.decision_round == 1 for p in deciders)

    def test_mute_coordinator_costs_a_round(self):
        system = build_transformed_system(
            proposals(4),
            base="chandra-toueg",
            byzantine=ct_attack(0, "ct-mute"),
            seed=9,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        deciders = [p for p in system.processes if p.pid != 0 and p.decided]
        assert all(p.decision_round >= 2 for p in deciders)
