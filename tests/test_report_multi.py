"""Tests: multi-artifact ``repro report`` with per-pid grouped rows.

One metrics JSONL per replica is the natural shape of a cluster run
(each ``node-*.log`` sibling writes its own artifact), so ``repro
report`` accepts several paths and renders one grouped section per
artifact with per-pid counter rows — a lagging or restarted replica
stands out against its peers. The single-path invocation must stay
byte-for-byte what it was before the flag grew ``nargs="+"``.
"""

from __future__ import annotations

import json

from repro.analysis.run_report import (
    RunReport,
    artifacts_to_json,
    per_pid_totals,
    render_artifacts,
)
from repro.cli import main
from repro.observability.export import read_run_jsonl, write_run_jsonl
from repro.observability.registry import MetricsRegistry
from repro.sim.trace import Trace


def _artifact(path, *, pids=(0, 1), decided=3, meta=None):
    metrics = MetricsRegistry()
    for pid in pids:
        metrics.inc("protocol", "decided", decided, pid=pid)
        metrics.inc("certification", "verified", 2 * decided, pid=pid)
    metrics.inc("network", "sent", 10)  # unlabelled: pid is None
    write_run_jsonl(path, Trace(), metrics, meta=meta or {"seed": 1})
    return path


class TestPerPidTotals:
    def test_rounds_collapse_but_pids_stay_apart(self):
        metrics = MetricsRegistry()
        metrics.inc("protocol", "decided", 1, pid=0, round=0)
        metrics.inc("protocol", "decided", 2, pid=0, round=1)
        metrics.inc("protocol", "decided", 5, pid=1, round=0)
        rows = per_pid_totals(metrics)
        assert rows == [
            {"pid": 0, "module": "protocol", "name": "decided", "total": 3},
            {"pid": 1, "module": "protocol", "name": "decided", "total": 5},
        ]

    def test_unlabelled_rows_sort_first(self):
        metrics = MetricsRegistry()
        metrics.inc("network", "sent", 4, pid=2)
        metrics.inc("network", "sent", 9)
        rows = per_pid_totals(metrics)
        assert rows[0]["pid"] is None
        assert rows[0]["total"] == 9
        assert rows[1] == {
            "pid": 2, "module": "network", "name": "sent", "total": 4,
        }


class TestRenderArtifacts:
    def test_one_section_per_artifact(self, tmp_path):
        items = [
            (f"run-{i}.jsonl", read_run_jsonl(
                _artifact(tmp_path / f"run-{i}.jsonl", meta={"seed": i})
            ))
            for i in range(2)
        ]
        text = render_artifacts(items)
        assert "per-pid counters — run-0.jsonl" in text
        assert "per-pid counters — run-1.jsonl" in text
        assert "artifact run-0.jsonl: seed=0" in text

    def test_json_view_carries_per_pid_and_full_report(self, tmp_path):
        artifact = read_run_jsonl(_artifact(tmp_path / "run.jsonl"))
        document = artifacts_to_json([("run.jsonl", artifact)])
        assert len(document) == 1
        assert document[0]["artifact"] == "run.jsonl"
        pids = {row["pid"] for row in document[0]["per_pid"]}
        assert pids == {None, 0, 1}
        assert document[0]["report"]["meta"] == {"seed": 1}


class TestReportCli:
    def test_single_path_output_is_unchanged(self, tmp_path, capsys):
        path = _artifact(tmp_path / "run.jsonl")
        assert main(["report", str(path)]) == 0
        observed = capsys.readouterr().out
        expected = RunReport.from_artifact(read_run_jsonl(path)).render()
        assert observed == expected + "\n"

    def test_multi_path_renders_grouped_sections(self, tmp_path, capsys):
        paths = [
            str(_artifact(tmp_path / f"node-{i}.jsonl", pids=(i,)))
            for i in range(3)
        ]
        assert main(["report", *paths]) == 0
        out = capsys.readouterr().out
        for path in paths:
            assert f"per-pid counters — {path}" in out

    def test_multi_path_json_is_a_list(self, tmp_path, capsys):
        paths = [
            str(_artifact(tmp_path / f"node-{i}.jsonl")) for i in range(2)
        ]
        assert main(["report", "--json", *paths]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [entry["artifact"] for entry in document] == paths

    def test_missing_path_exits_2(self, tmp_path, capsys):
        good = str(_artifact(tmp_path / "run.jsonl"))
        assert main(["report", good, str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
