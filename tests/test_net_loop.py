"""Tests: optional uvloop selection with graceful asyncio fallback.

uvloop is an opt-in accelerator, never a dependency: the contract under
test is that nothing changes unless asked, that asking without uvloop
installed falls back to stock asyncio with exactly one announcement,
and that an installed uvloop is activated through its ``install()``
hook. The fake-module pattern keeps all three paths testable in a
container that (deliberately) does not ship uvloop.
"""

from __future__ import annotations

import sys
import types

from repro.net.loop import ENV_VAR, install_event_loop, uvloop_requested


class TestRequested:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not uvloop_requested()

    def test_flag_wins(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert uvloop_requested(True)

    def test_env_values(self, monkeypatch):
        for value, expected in [
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("no", False), ("false", False),
        ]:
            monkeypatch.setenv(ENV_VAR, value)
            assert uvloop_requested() is expected, value


class TestInstall:
    def test_not_requested_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        notes = []
        assert install_event_loop(announce=notes.append) == "asyncio"
        assert notes == []

    def test_missing_uvloop_falls_back_with_a_note(self, monkeypatch):
        # Force the import to fail even if uvloop were ever installed.
        monkeypatch.setitem(sys.modules, "uvloop", None)
        notes = []
        assert (
            install_event_loop(uvloop_flag=True, announce=notes.append)
            == "asyncio"
        )
        assert len(notes) == 1
        assert "falling back" in notes[0]

    def test_present_uvloop_is_installed(self, monkeypatch):
        installed = []
        fake = types.ModuleType("uvloop")
        fake.install = lambda: installed.append(True)
        monkeypatch.setitem(sys.modules, "uvloop", fake)
        notes = []
        assert (
            install_event_loop(uvloop_flag=True, announce=notes.append)
            == "uvloop"
        )
        assert installed == [True]
        assert notes == ["uvloop event-loop policy installed"]

    def test_env_var_triggers_install(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        fake = types.ModuleType("uvloop")
        fake.install = lambda: None
        monkeypatch.setitem(sys.modules, "uvloop", fake)
        assert install_event_loop() == "uvloop"
