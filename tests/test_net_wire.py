"""Tests: the versioned wire codec (repro.net.wire).

Round-trips every registered stack type — including deeply nested
signed/certified messages — through **both** payload versions (v1 TLV
and the compact binary v2), and then attacks the decoder the way a
Byzantine peer would: truncation, oversizing, version skew, bit flips,
random garbage, hostile length/count prefixes. The contract under
attack is exactly one of two outcomes per input: a clean
:class:`WireError` (counted rejection) or a valid decode. Never another
exception type, never a hang.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.certificates import Certificate, CertificationAuthority, SignedMessage
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import Signature, SignatureScheme
from repro.errors import ReproError
from repro.messages.consensus import NULL, VCurrent, VDecide
from repro.net.messages import Hello, ReadReply, ReadRequest, StatusReply, StatusRequest
from repro.net.wire import (
    DEFAULT_VERSION,
    HEADER,
    MAGIC,
    MAX_DEPTH,
    MAX_FRAME,
    MAX_VARINT_BYTES,
    SUPPORTED_VERSIONS,
    VERSION,
    VERSION_BINARY,
    FrameAssembler,
    WireError,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
    register_wire_type,
    _read_varint,
    _unzigzag,
    _write_varint,
    _zigzag,
)
from repro.replication.kvstore import Command
from repro.service.messages import (
    Checkpoint,
    ClientReply,
    ClientRequest,
    StateRequest,
    StateResponse,
)


def signed_vdecide(slot: int = 3) -> SignedMessage:
    """A realistic certified message: signed VDecide over signed VCurrents."""
    keys = KeyAuthority(4, seed=11 * 1_000_003 + slot)
    scheme = SignatureScheme(keys)
    vect = ("a", "b", NULL, "d")
    entries = tuple(
        CertificationAuthority(scheme, keys.signer_for(pid)).make(
            VCurrent(sender=pid, round=1, est_vect=vect)
        )
        for pid in range(3)
    )
    return CertificationAuthority(scheme, keys.signer_for(0)).make(
        VDecide(sender=0, est_vect=vect), cert=Certificate(entries)
    )


SAMPLES = [
    None,
    True,
    0,
    -(2**70),
    3.25,
    "héllo",
    b"\x00\xff",
    (1, 2, ("nested", b"x")),
    {"k": (1, 2), "j": None},
    frozenset({1, "two"}),
    Command("set", "k1", "v1"),
    ClientRequest(client=4, req_id=9, command=Command("set", "k", "v")),
    ClientReply(replica=1, client=4, req_id=9, slot=2),
    Checkpoint(sender=2, count=4, digest="ab" * 32),
    StateRequest(replica=3, applied=7),
    Hello(cluster="deadbeef", peer=2, role="replica", mac=b"\x01" * 8),
    ReadRequest(client=5, req_id=1, key="k1"),
    ReadReply(replica=0, client=5, req_id=1, key="k1", found=False,
              value=None, applied=3),
    StatusRequest(client=5, req_id=2),
    StatusReply(replica=1, client=5, req_id=2, applied=4, committed=9,
                store_applied=9, digest="ff" * 32, stable_count=4,
                transfers=1, suffix_rejections=0),
    Signature(signer=2, mac=b"\x99" * 16),
    signed_vdecide(),
    StateResponse(
        replica=1,
        count=4,
        snapshot=(("k1", "v1"),),
        executed=((4, 1), (5, 2)),
        store_applied=4,
        certificate=None,
        suffix=((4, ("a", NULL, NULL, "d"), signed_vdecide(4)),),
    ),
]

VERSIONS = pytest.mark.parametrize("version", SUPPORTED_VERSIONS)


class TestRoundTrips:
    @VERSIONS
    @pytest.mark.parametrize("value", SAMPLES, ids=lambda v: type(v).__name__)
    def test_payload_roundtrip(self, value, version):
        assert decode_payload(
            encode_payload(value, version=version), version=version
        ) == value

    @VERSIONS
    @pytest.mark.parametrize("value", SAMPLES, ids=lambda v: type(v).__name__)
    def test_frame_roundtrip(self, value, version):
        assert decode_frame(encode_frame(value, version=version)) == value

    def test_default_version_is_binary(self):
        frame = encode_frame(signed_vdecide())
        assert frame[2] == DEFAULT_VERSION == VERSION_BINARY

    def test_binary_is_more_compact_on_certified_traffic(self):
        message = signed_vdecide()
        v1 = encode_frame(message, version=VERSION)
        v2 = encode_frame(message, version=VERSION_BINARY)
        assert len(v2) < len(v1) / 2

    @VERSIONS
    def test_certificate_survives_canonical_ordering(self, version):
        message = signed_vdecide()
        decoded = decode_frame(encode_frame(message, version=version))
        assert decoded.cert.entries == message.cert.entries
        assert decoded.signature == message.signature

    def test_assembler_reassembles_mixed_version_byte_dribble(self):
        # Versions alternate per frame: a receiver never negotiates.
        stream = b"".join(
            encode_frame(value, version=SUPPORTED_VERSIONS[i % 2])
            for i, value in enumerate(SAMPLES)
        )
        assembler = FrameAssembler()
        out = []
        for i in range(0, len(stream), 7):
            out.extend(assembler.feed(stream[i : i + 7]))
        assert out == SAMPLES
        assert sum(assembler.decoded_by_version.values()) == len(SAMPLES)
        assert set(assembler.decoded_by_version) == set(SUPPORTED_VERSIONS)

    def test_register_rejects_duplicate_names(self):
        class Fresh:
            pass

        with pytest.raises(WireError):
            register_wire_type(Fresh, name="Command")


class TestHostileFrames:
    """Satellite: fuzzed malformed frames are rejections, never crashes."""

    def assert_rejected_or_decoded(self, data: bytes) -> None:
        try:
            decode_frame(data)
        except WireError:
            pass  # the only acceptable exception type

    @VERSIONS
    def test_truncated_frames(self, version):
        frame = encode_frame(SAMPLES[-1], version=version)
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                decode_frame(frame[:cut])

    @VERSIONS
    def test_trailing_garbage(self, version):
        frame = encode_frame((1, 2, 3), version=version)
        with pytest.raises(WireError):
            decode_frame(frame + b"\x00")

    @VERSIONS
    def test_wrong_magic(self, version):
        frame = bytearray(encode_frame(1, version=version))
        frame[0] ^= 0xFF
        with pytest.raises(WireError):
            decode_frame(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(encode_frame(1))
        frame[2] = max(SUPPORTED_VERSIONS) + 1
        with pytest.raises(WireError):
            decode_frame(bytes(frame))
        frame[2] = 0
        with pytest.raises(WireError):
            decode_frame(bytes(frame))

    @VERSIONS
    def test_cross_version_relabeling_is_contained(self, version):
        # A frame whose version byte is flipped to the *other* supported
        # version is a payload parsed under the wrong grammar: that must
        # be a WireError (counted rejection) or a clean decode — nothing
        # else. This is the cross-version skew a mixed cluster can see
        # from a buggy or hostile peer.
        other = [v for v in SUPPORTED_VERSIONS if v != version][0]
        for value in SAMPLES:
            frame = bytearray(encode_frame(value, version=version))
            frame[2] = other
            self.assert_rejected_or_decoded(bytes(frame))

    def test_oversized_declared_length(self):
        for version in SUPPORTED_VERSIONS:
            header = HEADER.pack(MAGIC, version, MAX_FRAME + 1)
            with pytest.raises(WireError):
                decode_frame(header + b"\x00" * 16)
            with pytest.raises(WireError):
                FrameAssembler().feed(header)

    @VERSIONS
    def test_depth_bomb(self, version):
        value = "leaf"
        for _ in range(MAX_DEPTH + 2):
            value = (value,)
        with pytest.raises(WireError):
            encode_payload(value, version=version)

    @VERSIONS
    def test_unregistered_type_is_unencodable(self, version):
        class Alien:
            pass

        with pytest.raises(WireError):
            encode_payload(Alien(), version=version)

    def test_binary_varint_ceiling(self):
        with pytest.raises(WireError):
            encode_payload(1 << (7 * MAX_VARINT_BYTES + 7), version=VERSION_BINARY)

    def test_binary_hostile_count_prefix(self):
        # A tuple declaring 2**40 items inside a 16-byte payload must be
        # rejected up front, not allocated.
        payload = bytearray([0x07])  # tuple tag
        n = 1 << 40
        while True:
            low = n & 0x7F
            n >>= 7
            payload.append(low | 0x80 if n else low)
            if not n:
                break
        frame = HEADER.pack(MAGIC, VERSION_BINARY, len(payload)) + bytes(payload)
        with pytest.raises(WireError):
            decode_frame(frame)

    def test_binary_unknown_tag(self):
        frame = HEADER.pack(MAGIC, VERSION_BINARY, 1) + b"\xee"
        with pytest.raises(WireError):
            decode_frame(frame)

    @VERSIONS
    def test_every_single_bitflip_is_contained(self, version):
        frame = bytearray(encode_frame(SAMPLES[-1], version=version))
        for pos in range(len(frame)):
            for bit in (0x01, 0x80):
                mutated = bytearray(frame)
                mutated[pos] ^= bit
                self.assert_rejected_or_decoded(bytes(mutated))

    @VERSIONS
    def test_random_tampering_fuzz(self, version):
        rng = random.Random(42)
        frames = [
            bytearray(encode_frame(value, version=version)) for value in SAMPLES
        ]
        for trial in range(400):
            frame = bytearray(rng.choice(frames))
            for _ in range(rng.randint(1, 9)):
                frame[rng.randrange(len(frame))] = rng.randrange(256)
            self.assert_rejected_or_decoded(bytes(frame))

    @VERSIONS
    def test_random_garbage_fuzz(self, version):
        rng = random.Random(7)
        for trial in range(400):
            blob = bytes(rng.randrange(256) for _ in range(rng.randint(0, 64)))
            self.assert_rejected_or_decoded(blob)
            self.assert_rejected_or_decoded(
                HEADER.pack(MAGIC, version, len(blob)) + blob
            )

    @VERSIONS
    def test_assembler_survives_tampered_stream_then_raises(self, version):
        good = encode_frame("before", version=version)
        bad = bytearray(encode_frame("after", version=version))
        bad[0] ^= 0xFF  # corrupt the magic of the second frame
        assembler = FrameAssembler()
        with pytest.raises(WireError):
            assembler.feed(good + bytes(bad))

    def test_wire_error_is_a_repro_error(self):
        assert issubclass(WireError, ReproError)


def _payloads() -> st.SearchStrategy:
    """Arbitrary codec-supported values: scalars nested in containers."""
    scalars = (
        st.none()
        | st.booleans()
        | st.integers()
        | st.floats(allow_nan=False)
        | st.text(max_size=16)
        | st.binary(max_size=16)
    )
    return st.recursive(
        scalars,
        lambda children: st.lists(children, max_size=3).map(tuple)
        | st.dictionaries(st.text(max_size=8), children, max_size=3),
        max_leaves=8,
    )


class TestCodecProperties:
    """Hypothesis properties of the v2 binary primitives.

    The fuzz classes above throw *random* bytes at the decoder; these
    pin the algebraic contracts of the primitives themselves — zigzag
    and varint are total bijections on their domains, and the decoder
    never reads past a declared length no matter what follows it.
    """

    @given(st.integers())
    def test_zigzag_round_trips_and_is_non_negative(self, value):
        coded = _zigzag(value)
        assert coded >= 0
        assert _unzigzag(coded) == value

    @given(st.integers(), st.integers())
    def test_zigzag_is_injective(self, a, b):
        if a != b:
            assert _zigzag(a) != _zigzag(b)

    @given(st.integers(min_value=0))
    def test_varint_round_trips_consuming_exactly_its_encoding(self, value):
        out = bytearray()
        _write_varint(out, value)
        decoded, pos = _read_varint(memoryview(bytes(out)), 0, len(out))
        assert decoded == value
        assert pos == len(out)

    @given(st.integers(min_value=0), st.integers(min_value=0))
    def test_varint_is_injective(self, a, b):
        out_a, out_b = bytearray(), bytearray()
        _write_varint(out_a, a)
        _write_varint(out_b, b)
        assert (bytes(out_a) == bytes(out_b)) == (a == b)

    @given(st.integers(min_value=0), st.binary(max_size=32))
    def test_varint_read_never_passes_the_encoding_boundary(self, value, junk):
        out = bytearray()
        _write_varint(out, value)
        buf = bytes(out) + junk
        decoded, pos = _read_varint(memoryview(buf), 0, len(buf))
        assert decoded == value
        assert pos == len(out)  # the junk suffix is never touched

    @given(_payloads(), st.binary(min_size=1, max_size=64))
    def test_payload_decode_flags_bytes_past_the_declared_value(
        self, value, junk
    ):
        payload = encode_payload(value, version=VERSION_BINARY)
        with pytest.raises(WireError):
            decode_payload(payload + junk, version=VERSION_BINARY)

    @given(_payloads(), st.binary(max_size=HEADER.size - 1))
    def test_frame_decode_never_reads_past_the_declared_length(
        self, value, junk
    ):
        frame = encode_frame(value, version=VERSION_BINARY)
        assembler = FrameAssembler()
        messages = assembler.feed(frame + junk)
        assert len(messages) == 1
        assert messages[0] == value
        assert assembler.buffered == len(junk)
