"""Unit tests: the CT behaviour automaton's paths (monitor_ct)."""

from __future__ import annotations

import pytest

from repro.consensus.certification_ct import build_justification, select_proposal
from repro.consensus.monitor_ct import (
    EST,
    FINAL,
    PROPOSED,
    REPLIED,
    START,
    WAIT,
    CtPeerMonitor,
)
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE
from repro.messages.ct import CtAck, CtDecide, CtEstimate, CtNack, CtPropose
from tests.helpers import SignedWorkbench


@pytest.fixture
def bench():
    return SignedWorkbench(4)


def monitor_for(bench, peer):
    return CtPeerMonitor(peer, bench.params, bench.verify)


def estimate(bench, pid, round_number=1, ts=0):
    senders = [0, 1, 2]
    cert = Certificate(tuple(bench.init_quorum(senders)))
    return bench.authorities[pid].make(
        CtEstimate(
            sender=pid,
            round=round_number,
            est_vect=bench.vector_for(senders),
            ts=ts,
        ),
        cert,
    )


def propose(bench, round_number=1):
    coordinator = (round_number - 1) % bench.n
    estimates = [estimate(bench, pid, round_number) for pid in range(3)]
    picked = select_proposal(estimates)
    return bench.authorities[coordinator].make(
        CtPropose(
            sender=coordinator, round=round_number, est_vect=picked.body.est_vect
        ),
        build_justification(estimates),
    )


def ack(bench, pid, round_number=1):
    return bench.authorities[pid].make(
        CtAck(sender=pid, round=round_number),
        Certificate((propose(bench, round_number),)),
    )


def nack(bench, pid, round_number=1):
    return bench.authorities[pid].make(
        CtNack(sender=pid, round=round_number), EMPTY_CERTIFICATE
    )


def decide(bench, pid):
    proposal = propose(bench, 1)
    acks = [
        bench.authorities[k]
        .make(CtAck(sender=k, round=1), Certificate((proposal,)))
        .light()
        for k in range(3)
    ]
    return bench.authorities[pid].make(
        CtDecide(sender=pid, est_vect=proposal.body.est_vect),
        Certificate((proposal, *acks)),
    )


class TestLegalPaths:
    def test_coordinator_full_round(self, bench):
        monitor = monitor_for(bench, 0)
        assert monitor.state == START
        assert monitor.feed(bench.signed_init(0)).accepted
        assert monitor.state == WAIT
        assert monitor.feed(estimate(bench, 0)).accepted
        assert monitor.state == EST
        assert monitor.feed(propose(bench, 1)).accepted
        assert monitor.state == PROPOSED
        assert monitor.feed(ack(bench, 0)).accepted
        assert monitor.state == REPLIED

    def test_follower_ack_path(self, bench):
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        monitor.feed(estimate(bench, 2))
        assert monitor.feed(ack(bench, 2)).accepted
        assert monitor.state == REPLIED

    def test_follower_nack_path_and_round_rollover(self, bench):
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        monitor.feed(estimate(bench, 2))
        assert monitor.feed(nack(bench, 2)).accepted
        step = monitor.feed(estimate(bench, 2, round_number=2))
        assert step.accepted
        assert monitor.round == 2 and monitor.state == EST

    def test_silent_round_skip_via_estimates(self, bench):
        # A peer may advance without replying (quorum reached elsewhere).
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        monitor.feed(estimate(bench, 2, 1))
        assert monitor.feed(estimate(bench, 2, 2)).accepted

    def test_decide_terminal(self, bench):
        monitor = monitor_for(bench, 1)
        monitor.feed(bench.signed_init(1))
        monitor.feed(estimate(bench, 1))
        assert monitor.feed(decide(bench, 1)).accepted
        assert monitor.state == FINAL
        assert not monitor.feed(estimate(bench, 1, 2)).accepted


class TestViolations:
    def test_propose_from_non_coordinator(self, bench):
        monitor = monitor_for(bench, 1)  # round-1 coordinator is 0
        monitor.feed(bench.signed_init(1))
        monitor.feed(estimate(bench, 1))
        # Forge-by-structure: p1 signs a proposal for round 1.
        estimates = [estimate(bench, pid) for pid in range(3)]
        rogue = bench.authorities[1].make(
            CtPropose(
                sender=1,
                round=1,
                est_vect=select_proposal(estimates).body.est_vect,
            ),
            build_justification(estimates),
        )
        step = monitor.feed(rogue)
        assert not step.accepted
        assert monitor.faulty

    def test_double_reply_is_out_of_order(self, bench):
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        monitor.feed(estimate(bench, 2))
        monitor.feed(ack(bench, 2))
        step = monitor.feed(nack(bench, 2))
        assert not step.accepted

    def test_coordinator_nacking_itself(self, bench):
        monitor = monitor_for(bench, 0)
        monitor.feed(bench.signed_init(0))
        monitor.feed(estimate(bench, 0))
        step = monitor.feed(nack(bench, 0))
        assert not step.accepted
        assert "nacked itself" in (step.reason or "")

    def test_skipped_round_estimate(self, bench):
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        monitor.feed(estimate(bench, 2, 1))
        step = monitor.feed(estimate(bench, 2, 3))
        assert not step.accepted

    def test_vote_before_init(self, bench):
        monitor = monitor_for(bench, 2)
        step = monitor.feed(estimate(bench, 2))
        assert not step.accepted

    def test_identity_mismatch(self, bench):
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        step = monitor.feed(estimate(bench, 1))  # claims sender 1 on channel 2
        assert not step.accepted
        assert "identity mismatch" in (step.reason or "")

    def test_ack_round_mismatch(self, bench):
        monitor = monitor_for(bench, 2)
        monitor.feed(bench.signed_init(2))
        monitor.feed(estimate(bench, 2))
        step = monitor.feed(ack(bench, 2, round_number=2))
        assert not step.accepted
