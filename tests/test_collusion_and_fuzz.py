"""Tests: coordinated adversaries and hypothesis-generated schedules."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.properties import (
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
)
from repro.byzantine.collusion import SharedBrain, make_colluding_equivocators
from repro.consensus.hurfin_raynal import HurfinRaynalProcess
from repro.detectors.oracles import ScriptedDetector
from repro.sim.network import ScriptedDelay, UniformDelay
from repro.sim.world import World
from repro.systems import ConsensusSystem, build_transformed_system


def proposals(n):
    return [f"v{i}" for i in range(n)]


class TestColludingEquivocators:
    def test_safety_holds_under_collusion(self):
        system = build_transformed_system(
            proposals(7),
            byzantine=make_colluding_equivocators(7),
            seed=1,
            delay_model=UniformDelay(0.1, 2.0),
        )
        system.run(max_time=2_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_both_colluders_convicted_by_everyone(self):
        system = build_transformed_system(
            proposals(7),
            byzantine=make_colluding_equivocators(7),
            seed=2,
        )
        system.run(max_time=2_000)
        detection = check_detection(system)
        assert detection.detected_by_all
        assert detection.clean

    def test_at_most_one_branch_decided(self):
        # The decision quorum arithmetic: only one vector can gather
        # n - F same-vector relays, so the decided vector is unique even
        # though two well-formed branches circulated.
        for seed in range(10):
            system = build_transformed_system(
                proposals(7),
                byzantine=make_colluding_equivocators(7),
                seed=seed,
                delay_model=UniformDelay(0.1, 2.0),
            )
            system.run(max_time=2_000)
            decided = {v for v in system.decisions().values()}
            assert len(decided) == 1

    def test_shared_brain_carries_both_branches(self):
        system = build_transformed_system(
            proposals(7),
            byzantine=make_colluding_equivocators(7),
            seed=3,
        )
        leader = system.processes[0]
        system.run(max_time=2_000)
        assert isinstance(leader.brain, SharedBrain)
        assert leader.brain.ready
        vectors = {b.body.est_vect for b in leader.brain.branches}
        assert len(vectors) == 2


# -- schedule fuzzing ----------------------------------------------------------

#: One channel-delay rule: (src, dst, multiplier-tenths).
channel_rules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=120),
    ),
    max_size=8,
)

#: Suspicion windows per process: (suspect-target, start-tenths, length-tenths).
suspicion_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=60),
    ),
    max_size=4,
)


def build_fuzzed_crash_system(rules, scripts_per_pid, seed) -> ConsensusSystem:
    delay_rules = [
        (
            lambda s, d, p, rs=rs, rd=rd: s == rs and d == rd,
            rm / 10.0,
        )
        for rs, rd, rm in rules
    ]
    processes = []
    for pid in range(5):
        script = [
            (target, start / 10.0, (start + length) / 10.0)
            for target, start, length in scripts_per_pid[pid]
            if target != pid
        ]
        processes.append(
            HurfinRaynalProcess(
                proposal=f"v{pid}",
                detector=ScriptedDetector(script),
                suspicion_poll=0.2,
            )
        )
    world = World(
        processes,
        seed=seed,
        delay_model=ScriptedDelay(delay_rules, default=1.0),
        fifo=True,
    )
    return ConsensusSystem(world=world, processes=processes)


class TestScheduleFuzzing:
    @settings(max_examples=40, deadline=None)
    @given(
        rules=channel_rules,
        scripts=st.lists(suspicion_scripts, min_size=5, max_size=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_hr_safety_under_arbitrary_fifo_schedules(self, rules, scripts, seed):
        """The FIFO safety argument (DESIGN.md §5), fuzzed: arbitrary
        per-channel delays plus arbitrary wrongful-suspicion windows can
        delay the crash protocol but never split or corrupt it."""
        system = build_fuzzed_crash_system(rules, scripts, seed)
        system.run(max_events=200_000, max_time=500.0)
        report = check_crash_consensus(system)
        # Termination may legitimately exceed the horizon when suspicion
        # windows churn rounds forever; safety must be unconditional.
        assert report.agreement, report.violations
        assert report.validity, report.violations

    @settings(max_examples=25, deadline=None)
    @given(
        rules=channel_rules,
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_transformed_safety_under_fuzzed_delays(self, rules, seed):
        delay_rules = [
            (
                lambda s, d, p, rs=rs, rd=rd: s == rs % 4 and d == rd % 4,
                rm / 10.0,
            )
            for rs, rd, rm in rules
        ]
        system = build_transformed_system(
            proposals(4),
            seed=seed,
            delay_model=ScriptedDelay(delay_rules, default=1.0),
        )
        system.run(max_events=200_000, max_time=500.0)
        report = check_vector_consensus(system)
        assert report.agreement, report.violations
        assert report.validity, report.violations
