"""Integration tests: BFT state-machine replication over Vector Consensus."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.byzantine.transformed_attacks import (
    TCorruptVectorAttacker,
    TForgedDecideAttacker,
)
from repro.replication import (
    Command,
    KeyValueStore,
    build_replicated_system,
    materialise,
)
from repro.sim.network import UniformDelay


def workloads(n, slots):
    return [
        [Command("set", f"key-{pid}-{slot}", slot) for slot in range(slots)]
        for pid in range(n)
    ]


def corrupt_engine(pid, proposal, params, authority, detector, config):
    return TCorruptVectorAttacker(
        proposal=proposal,
        params=params,
        authority=authority,
        detector=detector,
        config=config,
    )


def forged_decide_engine(pid, proposal, params, authority, detector, config):
    return TForgedDecideAttacker(
        proposal=proposal,
        params=params,
        authority=authority,
        detector=detector,
        config=config,
    )


class TestKeyValueStore:
    def test_set_and_get(self):
        store = KeyValueStore()
        store.apply(Command("set", "a", 1))
        assert store.get("a") == 1
        assert len(store) == 1

    def test_del(self):
        store = KeyValueStore()
        store.apply(Command("set", "a", 1))
        store.apply(Command("del", "a"))
        assert store.get("a") is None

    def test_garbage_commands_ignored_deterministically(self):
        store = KeyValueStore()
        store.apply("<poison>")
        store.apply(42)
        assert store.snapshot() == {}
        assert store.applied == 2

    def test_materialise(self):
        log = [Command("set", "x", 1), Command("set", "x", 2)]
        assert materialise(log) == {"x": 2}

    def test_digest_is_content_hash(self):
        a = KeyValueStore().apply_all(
            [Command("set", "x", 1), Command("set", "y", 2)]
        )
        b = KeyValueStore().apply_all(
            [Command("set", "y", 2), Command("set", "x", 1)]
        )
        # Order-independent: equal contents hash equally.
        assert a.digest() == b.digest()
        a.apply(Command("set", "x", 3))
        assert a.digest() != b.digest()

    def test_digest_ignores_unknown_commands_deterministically(self):
        # A Byzantine proposer's garbage must leave every correct
        # replica's digest identical — ignored is ignored everywhere.
        clean = KeyValueStore().apply_all([Command("set", "x", 1)])
        dirty = KeyValueStore().apply_all(
            [Command("set", "x", 1), "<poison>", 42, ("weird", "tuple")]
        )
        assert clean.digest() == dirty.digest()
        assert dirty.applied == 4

    def test_digest_of_uncanonical_value_is_deterministic(self):
        # Values outside the canonical vocabulary fall back to repr.
        a = KeyValueStore().apply_all([Command("set", "x", {"a", "b"})])
        b = KeyValueStore().apply_all([Command("set", "x", {"a", "b"})])
        assert a.digest() == b.digest()

    def test_snapshot_restore_round_trip(self):
        original = KeyValueStore().apply_all(
            [Command("set", "x", 1), Command("set", "y", 2), Command("del", "y")]
        )
        restored = KeyValueStore().restore(
            original.snapshot(), applied=original.applied
        )
        assert restored.snapshot() == original.snapshot()
        assert restored.digest() == original.digest()
        assert restored.applied == original.applied
        # The copy is deep enough: mutating one store leaves the other.
        restored.apply(Command("set", "z", 3))
        assert original.get("z") is None


class TestReplicatedLog:
    def test_single_slot_converges(self):
        system = build_replicated_system(workloads(4, 1), target_slots=1, seed=1)
        result = system.run()
        assert result.quiescent()
        assert system.converged()

    def test_multi_slot_converges(self):
        system = build_replicated_system(workloads(4, 4), target_slots=4, seed=2)
        system.run()
        assert system.converged()
        assert all(r.committed_slots == 4 for r in system.replicas)

    def test_logs_identical_across_replicas(self):
        system = build_replicated_system(workloads(4, 3), target_slots=3, seed=3)
        system.run()
        logs = system.correct_logs()
        assert all(log == logs[0] for log in logs)

    def test_stores_identical_across_replicas(self):
        system = build_replicated_system(workloads(4, 3), target_slots=3, seed=4)
        system.run()
        stores = [materialise(log) for log in system.correct_logs()]
        assert all(store == stores[0] for store in stores)

    def test_at_least_once_reproposal(self):
        # With enough spare slots every command eventually commits even if
        # it loses some INIT races.
        n, commands_each = 4, 2
        system = build_replicated_system(
            workloads(n, commands_each),
            target_slots=8,
            seed=5,
            delay_model=UniformDelay(0.1, 2.0),
        )
        system.run()
        assert system.converged()
        committed = set(system.correct_logs()[0])
        for pid in range(n):
            for slot in range(commands_each):
                assert Command("set", f"key-{pid}-{slot}", slot) in committed

    def test_slot_key_domain_separation(self):
        # Engines of different slots must not share signature domains.
        system = build_replicated_system(workloads(4, 2), target_slots=2, seed=6)
        system.run()
        replica = system.replicas[0]
        slot0 = replica.engines[0]
        slot1 = replica.engines[1]
        init0 = next(iter(slot0.est_cert))
        assert slot0.authority.signature_valid(init0)
        assert not slot1.authority.signature_valid(init0)


class TestReplicationUnderByzantineReplica:
    def test_corrupting_replica_does_not_diverge_the_log(self):
        system = build_replicated_system(
            workloads(4, 3),
            target_slots=3,
            seed=7,
            byzantine={3: corrupt_engine},
        )
        system.run()
        assert system.converged()
        stores = [materialise(log) for log in system.correct_logs()]
        assert all(store == stores[0] for store in stores)

    def test_forged_decides_do_not_commit(self):
        system = build_replicated_system(
            workloads(4, 2),
            target_slots=2,
            seed=8,
            byzantine={2: forged_decide_engine},
        )
        system.run()
        assert system.converged()
        # The attacker's fabricated vectors never appear in the log.
        for log in system.correct_logs():
            assert all(isinstance(entry, Command) for entry in log)

    def test_attacker_convicted_across_slots(self):
        system = build_replicated_system(
            workloads(4, 2),
            target_slots=2,
            seed=9,
            byzantine={3: corrupt_engine},
        )
        system.run()
        for pid in system.correct_pids:
            assert 3 in system.replicas[pid].faulty_union

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=20_000))
    def test_convergence_across_random_schedules(self, seed):
        system = build_replicated_system(
            workloads(4, 2),
            target_slots=2,
            seed=seed,
            byzantine={3: corrupt_engine},
            delay_model=UniformDelay(0.1, 2.0),
        )
        system.run(max_time=2_000)
        assert system.converged()
