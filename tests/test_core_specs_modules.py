"""Unit and property tests: resilience arithmetic and module config."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.modules import ABLATABLE_MODULES, ModuleConfig
from repro.core.specs import (
    SystemParameters,
    certification_resilience,
    crash_resilience,
    max_arbitrary_faults,
    quorum,
    vector_validity_floor,
)
from repro.errors import ConfigurationError


class TestResilienceArithmetic:
    @pytest.mark.parametrize(
        "n, expected", [(2, 0), (3, 1), (4, 1), (5, 2), (7, 3), (10, 4)]
    )
    def test_crash_resilience(self, n, expected):
        assert crash_resilience(n) == expected

    @pytest.mark.parametrize(
        "n, expected", [(2, 0), (3, 0), (4, 1), (7, 2), (10, 3), (13, 4)]
    )
    def test_certification_resilience(self, n, expected):
        assert certification_resilience(n) == expected

    @given(st.integers(min_value=2, max_value=500))
    def test_arbitrary_bound_is_min_of_both(self, n):
        f = max_arbitrary_faults(n)
        assert f == min((n - 1) // 2, (n - 1) // 3)

    @given(st.integers(min_value=4, max_value=500))
    def test_quorum_majority_intersection(self, n):
        """Two (n-F) quorums intersect in more than F processes: the
        counting fact the transformed protocol's agreement rests on."""
        f = max_arbitrary_faults(n)
        q = quorum(n, f)
        assert 2 * q - n >= f + 1

    @given(st.integers(min_value=4, max_value=500))
    def test_vector_validity_floor_positive_at_bound(self, n):
        f = max_arbitrary_faults(n)
        assert vector_validity_floor(n, f) >= 1

    def test_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            crash_resilience(1)


class TestSystemParameters:
    def test_for_n_defaults_to_bound(self):
        params = SystemParameters.for_n(7)
        assert params.n == 7
        assert params.f == 2
        assert params.quorum == 5
        assert params.alpha == 3

    def test_explicit_f_within_bound(self):
        params = SystemParameters.for_n(7, f=1)
        assert params.f == 1
        assert params.quorum == 6

    def test_f_beyond_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParameters.for_n(4, f=2)

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=4, f=-1, certification_c=1)

    def test_custom_certification_c_caps_f(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=9, f=3, certification_c=2)

    @given(st.integers(min_value=4, max_value=200))
    def test_alpha_at_least_one(self, n):
        params = SystemParameters.for_n(n)
        assert params.alpha >= 1


class TestModuleConfig:
    def test_full_has_everything_active(self):
        config = ModuleConfig.full()
        assert set(config.active_modules()) == set(ABLATABLE_MODULES)

    @pytest.mark.parametrize("module", ABLATABLE_MODULES)
    def test_without_disables_named_module(self, module):
        config = ModuleConfig.full().without(module)
        assert module not in config.active_modules()

    def test_without_monitor_disables_dependents(self):
        config = ModuleConfig.full().without("monitor")
        active = config.active_modules()
        assert "monitor" not in active
        assert "certification" not in active
        assert "ledger" not in active

    def test_unknown_module_rejected(self):
        with pytest.raises(ConfigurationError):
            ModuleConfig.full().without("flux-capacitor")

    def test_config_is_immutable(self):
        config = ModuleConfig.full()
        with pytest.raises(AttributeError):
            config.verify_signatures = False  # type: ignore[misc]
