"""Tests: the multi-group genesis artifact and its structural isolation.

A :class:`~repro.shard.genesis.ShardGenesis` pins a whole sharded
deployment in one validated, content-addressed JSON document. The load-
bearing properties: each derived per-shard genesis has its own name,
seed and content hash (so key material and hello MACs are disjoint
across shards — misrouted replicas *cannot* talk), every shard-local
constraint is enforced by the unmodified single-group validator, and
malformed documents raise :class:`ConfigurationError` (CLI exit 2).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shard import ShardGenesis, shard_seed


def _addresses(n_shards: int, replicas: int = 4, base: int = 21000):
    return tuple(
        tuple(("127.0.0.1", base + shard * 100 + pid) for pid in range(replicas))
        for shard in range(n_shards)
    )


def _genesis(n_shards: int = 2, **overrides) -> ShardGenesis:
    kwargs = {"n_shards": n_shards, "addresses": _addresses(n_shards)}
    kwargs.update(overrides)
    return ShardGenesis(**kwargs)


class TestValidation:
    def test_valid_document_passes(self):
        _genesis().validate()

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            _genesis(name="").validate()

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            _genesis(0, addresses=()).validate()

    def test_rejects_address_shard_mismatch(self):
        with pytest.raises(ConfigurationError):
            _genesis(2, addresses=_addresses(3)).validate()

    def test_rejects_short_replica_group(self):
        bad = (_addresses(2)[0][:3], _addresses(2)[1])
        with pytest.raises(ConfigurationError):
            _genesis(2, addresses=bad).validate()

    def test_rejects_cross_shard_duplicate_address(self):
        group = _addresses(1)[0]
        with pytest.raises(ConfigurationError, match="assigned to both"):
            _genesis(2, addresses=(group, group)).validate()

    def test_shard_local_constraints_apply(self):
        # The single-group validator runs per derived genesis: a client
        # budget of zero is illegal there, hence here.
        with pytest.raises(ConfigurationError):
            _genesis(max_clients=0).validate()


class TestDerivedGenesis:
    def test_each_shard_gets_its_own_name_seed_and_id(self):
        genesis = _genesis(3, addresses=_addresses(3), name="prod", seed=7)
        derived = [genesis.genesis_for(shard) for shard in range(3)]
        assert [g.name for g in derived] == ["prod/s0", "prod/s1", "prod/s2"]
        assert [g.seed for g in derived] == [shard_seed(7, s) for s in range(3)]
        assert len({g.genesis_id() for g in derived}) == 3

    def test_knobs_pass_through(self):
        genesis = _genesis(batch_size=16, window=8, checkpoint_interval=6)
        sub = genesis.genesis_for(0)
        assert sub.batch_size == 16
        assert sub.window == 8
        assert sub.checkpoint_interval == 6
        assert sub.n_replicas == genesis.replicas_per_shard

    def test_out_of_range_shard_raises(self):
        genesis = _genesis()
        with pytest.raises(ConfigurationError):
            genesis.genesis_for(2)
        with pytest.raises(ConfigurationError):
            genesis.genesis_for(-1)


class TestPersistence:
    def test_round_trip_preserves_everything(self, tmp_path):
        genesis = _genesis(seed=42, batch_size=16, key_space=32)
        path = genesis.save(tmp_path / "shard-genesis.json")
        reloaded = ShardGenesis.load(path)
        assert reloaded == genesis
        assert reloaded.shard_genesis_id() == genesis.shard_genesis_id()

    def test_content_hash_tracks_content(self):
        assert (
            _genesis(seed=1).shard_genesis_id()
            != _genesis(seed=2).shard_genesis_id()
        )

    def test_rejects_unknown_keys(self):
        data = _genesis().to_json()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown shard genesis"):
            ShardGenesis.from_json(data)

    def test_rejects_non_object_document(self):
        with pytest.raises(ConfigurationError):
            ShardGenesis.from_json([1, 2, 3])

    def test_rejects_malformed_addresses(self):
        data = _genesis().to_json()
        data["addresses"] = [["not-a-pair"]]
        with pytest.raises(ConfigurationError):
            ShardGenesis.from_json(data)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardGenesis.load(tmp_path / "absent.json")

    def test_load_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            ShardGenesis.load(bad)
