"""Unit and property tests: vector certification (paper Propositions 1-2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.specs import SystemParameters
from repro.core.vector_certification import (
    CertifiedVectorBuilder,
    certified_vector_problems,
    vectors_compatible,
)
from repro.errors import CertificateError
from repro.messages.consensus import NULL
from tests.helpers import SignedWorkbench


@pytest.fixture
def bench():
    return SignedWorkbench(4)


class TestCertifiedVectorBuilder:
    def test_not_ready_until_quorum(self, bench):
        builder = CertifiedVectorBuilder(bench.params)
        builder.add(bench.signed_init(0))
        builder.add(bench.signed_init(1))
        assert not builder.ready
        builder.add(bench.signed_init(2))
        assert builder.ready

    def test_build_before_ready_rejected(self, bench):
        builder = CertifiedVectorBuilder(bench.params)
        with pytest.raises(CertificateError):
            builder.build()

    def test_build_produces_witnessed_vector(self, bench):
        builder = CertifiedVectorBuilder(bench.params)
        for pid in (0, 1, 3):
            builder.add(bench.signed_init(pid))
        vector, cert = builder.build()
        assert vector == ("v0", "v1", NULL, "v3")
        assert cert.senders() == frozenset({0, 1, 3})
        assert certified_vector_problems(
            list(cert), vector, bench.params, bench.verify
        ) == []

    def test_duplicate_sender_ignored(self, bench):
        builder = CertifiedVectorBuilder(bench.params)
        assert builder.add(bench.signed_init(0))
        assert not builder.add(bench.signed_init(0, "other"))
        assert builder.collected_count == 1

    def test_extra_inits_after_ready_ignored(self, bench):
        builder = CertifiedVectorBuilder(bench.params)
        for pid in range(3):
            builder.add(bench.signed_init(pid))
        assert not builder.add(bench.signed_init(3))
        vector, _cert = builder.build()
        assert vector[3] == NULL

    def test_non_init_rejected(self, bench):
        builder = CertifiedVectorBuilder(bench.params)
        with pytest.raises(CertificateError):
            builder.add(bench.coordinator_current())


class TestCertifiedVectorProblems:
    def test_well_formed_passes(self, bench):
        inits = bench.init_quorum([0, 1, 2])
        vector = bench.vector_for([0, 1, 2])
        assert certified_vector_problems(inits, vector, bench.params, bench.verify) == []

    def test_falsified_entry_detected(self, bench):
        """Proposition-2 machinery: falsifying an entry is detectable."""
        inits = bench.init_quorum([0, 1, 2])
        vector = list(bench.vector_for([0, 1, 2]))
        vector[1] = "falsified"
        problems = certified_vector_problems(
            inits, tuple(vector), bench.params, bench.verify
        )
        assert any("entry 1" in p for p in problems)

    def test_unwitnessed_entry_detected(self, bench):
        inits = bench.init_quorum([0, 1, 2])
        vector = list(bench.vector_for([0, 1, 2]))
        vector[3] = "injected"  # no INIT witnesses slot 3
        problems = certified_vector_problems(
            inits, tuple(vector), bench.params, bench.verify
        )
        assert any("no witnessing INIT" in p for p in problems)

    def test_short_quorum_detected(self, bench):
        inits = bench.init_quorum([0, 1])
        vector = bench.vector_for([0, 1])
        problems = certified_vector_problems(inits, vector, bench.params, bench.verify)
        assert any("distinct valid senders" in p for p in problems)

    def test_bad_signature_detected(self, bench):
        from repro.core.certificates import EMPTY_CERTIFICATE, SignedMessage
        from repro.messages.consensus import Init

        good = bench.init_quorum([0, 1])
        bad = SignedMessage(
            body=Init(sender=2, value="v2"),
            cert=EMPTY_CERTIFICATE,
            signature=bench.scheme.forge(2, "nope"),
        )
        vector = bench.vector_for([0, 1, 2])
        problems = certified_vector_problems(
            good + [bad], vector, bench.params, bench.verify
        )
        assert any("bad signature" in p for p in problems)

    def test_duplicate_sender_detected(self, bench):
        inits = bench.init_quorum([0, 1, 2]) + [bench.signed_init(0, "again")]
        vector = bench.vector_for([0, 1, 2])
        problems = certified_vector_problems(inits, vector, bench.params, bench.verify)
        assert any("two INIT entries" in p for p in problems)

    def test_wrong_length_vector_detected(self, bench):
        inits = bench.init_quorum([0, 1, 2])
        problems = certified_vector_problems(
            inits, ("v0",), bench.params, bench.verify
        )
        assert problems and "length" in problems[0]

    def test_foreign_entry_detected(self, bench):
        inits = bench.init_quorum([0, 1, 2]) + [bench.coordinator_current()]
        vector = bench.vector_for([0, 1, 2])
        problems = certified_vector_problems(inits, vector, bench.params, bench.verify)
        assert any("non-INIT entry" in p for p in problems)


class TestProposition1And2Properties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=10),
        subset_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_prop1_every_quorum_subset_builds_well_formed_vector(
        self, n, subset_seed
    ):
        """Proposition 1: every correct process can build a vector whose
        certificate is well-formed w.r.t. it."""
        import random

        bench = SignedWorkbench(n)
        rng = random.Random(subset_seed)
        senders = rng.sample(range(n), bench.params.quorum)
        builder = CertifiedVectorBuilder(bench.params)
        for pid in senders:
            builder.add(bench.signed_init(pid))
        vector, cert = builder.build()
        assert certified_vector_problems(
            list(cert), vector, bench.params, bench.verify
        ) == []
        for pid in senders:
            assert vector[pid] == f"v{pid}"

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=10),
        seed_a=st.integers(min_value=0, max_value=10_000),
        seed_b=st.integers(min_value=0, max_value=10_000),
    )
    def test_prop2_two_certified_vectors_never_conflict(self, n, seed_a, seed_b):
        """The checkable core of Proposition 2: two well-formed certified
        vectors built from honest INITs agree on every shared entry."""
        import random

        bench = SignedWorkbench(n)

        def build(seed):
            rng = random.Random(seed)
            senders = rng.sample(range(n), bench.params.quorum)
            builder = CertifiedVectorBuilder(bench.params)
            for pid in senders:
                builder.add(bench.signed_init(pid))
            return builder.build()[0]

        assert vectors_compatible(build(seed_a), build(seed_b))

    def test_incompatible_vectors_detected(self):
        assert not vectors_compatible(("a", NULL), ("b", NULL))
        assert vectors_compatible(("a", NULL), (NULL, "b"))
        assert vectors_compatible(("a", "b"), ("a", "b"))
