"""Security property fuzzing: *any* tampering is caught somewhere.

The pipeline's soundness claim is compositional: a message either passes
signature verification unchanged, or some layer (signature module,
certificate analyser, automaton) rejects it. These hypothesis tests
apply randomized tampering to well-formed signed messages and assert the
claim holds for every mutation the strategy can produce.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.consensus.certification import (
    current_message_problems,
    decide_message_problems,
)
from repro.core.certificates import Certificate, SignedMessage
from repro.messages.consensus import VCurrent, VDecide
from tests.helpers import SignedWorkbench

BENCH = SignedWorkbench(4)
COORDINATOR_CURRENT = BENCH.coordinator_current()
RELAYS = [BENCH.relay_current(pid, COORDINATOR_CURRENT) for pid in (1, 2)]
DECIDE = BENCH.authorities[1].make(
    VDecide(sender=1, est_vect=COORDINATOR_CURRENT.body.est_vect),
    Certificate((COORDINATOR_CURRENT, *RELAYS)),
)


def tamper_body(message: SignedMessage, field: str, value) -> SignedMessage:
    return SignedMessage(
        body=message.body.replace(**{field: value}),
        cert=message.cert,
        signature=message.signature,
    )


def tamper_signature_byte(message: SignedMessage, index: int) -> SignedMessage:
    mac = bytearray(message.signature.mac)
    mac[index % len(mac)] ^= 0x01
    return SignedMessage(
        body=message.body,
        cert=message.cert,
        signature=replace(message.signature, mac=bytes(mac)),
    )


def is_caught(message: SignedMessage) -> bool:
    """True when some pipeline layer rejects the message."""
    if not BENCH.verify(message):
        return True  # signature module
    if isinstance(message.body, VCurrent):
        return bool(current_message_problems(message, BENCH.params, BENCH.verify))
    if isinstance(message.body, VDecide):
        return bool(decide_message_problems(message, BENCH.params, BENCH.verify))
    return False


class TestCurrentTampering:
    @given(index=st.integers(min_value=0, max_value=31))
    def test_any_signature_bitflip_is_caught(self, index):
        assert is_caught(tamper_signature_byte(COORDINATOR_CURRENT, index))

    @given(round_number=st.integers(min_value=-3, max_value=50))
    def test_any_round_rewrite_is_caught(self, round_number):
        tampered = tamper_body(COORDINATOR_CURRENT, "round", round_number)
        if round_number == COORDINATOR_CURRENT.body.round:
            assert not is_caught(tampered)  # identity rewrite: still valid
        else:
            assert is_caught(tampered)

    @given(
        slot=st.integers(min_value=0, max_value=3),
        value=st.text(min_size=0, max_size=8),
    )
    def test_any_vector_entry_rewrite_is_caught(self, slot, value):
        vector = list(COORDINATOR_CURRENT.body.est_vect)
        original = vector[slot]
        vector[slot] = value
        tampered = tamper_body(
            COORDINATOR_CURRENT, "est_vect", tuple(vector)
        )
        if value == original:
            assert not is_caught(tampered)
        else:
            assert is_caught(tampered)

    @given(sender=st.integers(min_value=0, max_value=3))
    def test_any_sender_rewrite_is_caught(self, sender):
        tampered = tamper_body(COORDINATOR_CURRENT, "sender", sender)
        if sender == COORDINATOR_CURRENT.body.sender:
            assert not is_caught(tampered)
        else:
            assert is_caught(tampered)

    @given(drop=st.integers(min_value=0, max_value=2))
    def test_any_certificate_entry_drop_is_caught(self, drop):
        entries = list(COORDINATOR_CURRENT.full_cert().entries)
        del entries[drop]
        tampered = SignedMessage(
            body=COORDINATOR_CURRENT.body,
            cert=Certificate(tuple(entries)),
            signature=COORDINATOR_CURRENT.signature,
        )
        assert is_caught(tampered)

    @given(extra_value=st.text(min_size=1, max_size=6))
    def test_any_certificate_injection_is_caught(self, extra_value):
        injected = BENCH.signed_init(3, extra_value)
        tampered = SignedMessage(
            body=COORDINATOR_CURRENT.body,
            cert=COORDINATOR_CURRENT.full_cert().add(injected),
            signature=COORDINATOR_CURRENT.signature,
        )
        assert is_caught(tampered)


class TestDecideTampering:
    def test_baseline_is_clean(self):
        assert not is_caught(DECIDE)

    @given(index=st.integers(min_value=0, max_value=31))
    def test_signature_bitflips_caught(self, index):
        assert is_caught(tamper_signature_byte(DECIDE, index))

    @settings(max_examples=30)
    @given(
        slot=st.integers(min_value=0, max_value=3),
        value=st.text(min_size=1, max_size=8),
    )
    def test_decided_vector_rewrites_caught(self, slot, value):
        vector = list(DECIDE.body.est_vect)
        if vector[slot] == value:
            return
        vector[slot] = value
        tampered = tamper_body(DECIDE, "est_vect", tuple(vector))
        assert is_caught(tampered)

    @given(keep=st.integers(min_value=1, max_value=2))
    def test_quorum_thinning_caught(self, keep):
        currents = DECIDE.full_cert().of_type(VCurrent)[:keep]
        tampered = SignedMessage(
            body=DECIDE.body,
            cert=Certificate(tuple(currents)),
            signature=DECIDE.signature,
        )
        assert is_caught(tampered)
