"""Tests: sharded multi-group cluster orchestration (repro.shard.cluster).

The heavyweight test is a scaled-down ``make shard-smoke``: two shards
of four replica subprocesses each over real TCP, one replica SIGKILLed
and rejoined *in one shard* mid-workload, then per-shard convergence,
exactly-once and blast-radius asserted from the verdict record. The
rest covers genesis generation and operator-facing guard rails (CLI
exit 2 on misconfiguration) without spawning sixteen processes.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.shard import ShardedLocalCluster, make_shard_genesis, run_shard_smoke
from repro.shard.cluster import ShardClusterError


def _cli(*argv: str, timeout: float = 60) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


class TestGenesisGeneration:
    def test_ports_are_distinct_across_shards(self):
        genesis = make_shard_genesis(2, 4, seed=31)
        ports = [
            port for group in genesis.addresses for _host, port in group
        ]
        assert len(set(ports)) == 8
        genesis.validate()

    def test_overrides_flow_through(self):
        genesis = make_shard_genesis(2, 4, seed=31, window=3, name="custom")
        assert genesis.window == 3
        assert genesis.name == "custom"
        assert genesis.genesis_for(1).window == 3

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            make_shard_genesis(0)


class TestClusterGuards:
    def test_out_of_range_shard_raises(self, tmp_path):
        cluster = ShardedLocalCluster(make_shard_genesis(2, seed=32), tmp_path)
        with pytest.raises(ShardClusterError):
            cluster.kill(5, 0)

    def test_workdir_carries_one_subdir_per_shard(self, tmp_path):
        ShardedLocalCluster(make_shard_genesis(2, seed=33), tmp_path)
        assert (tmp_path / "shard-genesis.json").exists()
        assert (tmp_path / "shard-0").exists()
        assert (tmp_path / "shard-1").exists()

    def test_smoke_rejects_kill_shard_out_of_range(self):
        with pytest.raises(ConfigurationError):
            asyncio.run(run_shard_smoke(shards=2, kill_shard=7))


class TestShardCli:
    def test_cluster_rejects_bad_kill_shard_with_exit_2(self):
        result = _cli(
            "shard", "cluster", "--shards", "2", "--kill-shard", "9"
        )
        assert result.returncode == 2
        assert "error:" in result.stderr

    def test_route_requires_a_shard_count_with_exit_2(self):
        result = _cli("shard", "route", "some-key")
        assert result.returncode == 2

    def test_keygen_route_round_trip(self, tmp_path):
        genesis_path = tmp_path / "shard-genesis.json"
        keygen = _cli(
            "shard", "keygen", "--out", str(genesis_path), "--shards", "3"
        )
        assert keygen.returncode == 0
        assert genesis_path.exists()
        route = _cli(
            "shard", "route", "--genesis", str(genesis_path), "k0", "k1"
        )
        assert route.returncode == 0
        assert "-> shard" in route.stdout

    def test_loopback_cli_is_byte_identical(self, tmp_path):
        first = _cli("shard", "loopback", "--requests", "12", timeout=120)
        second = _cli("shard", "loopback", "--requests", "12", timeout=120)
        assert first.returncode == 0
        assert first.stdout == second.stdout
        assert "ok" in first.stderr


class TestSubprocessShardCluster:
    def test_kill_rejoin_in_one_shard_converges_exactly_once(self, tmp_path):
        verdict = asyncio.run(
            run_shard_smoke(
                shards=2,
                replicas_per_shard=4,
                requests=24,
                kill_shard=1,
                kill_pid=2,
                seed=19,
                workdir=tmp_path,
                concurrency=4,
                converge_timeout=90.0,
            )
        )
        assert verdict["ok"]
        assert verdict["killed"] == {"shard": 1, "pid": 2}
        # The workload plus two sentinels, never fewer; duplicates never
        # double-count (per-shard exactly-once is asserted inside the
        # smoke against each shard's committed counts).
        assert verdict["committed"] >= 26
        assert verdict["transfers"][1][2] >= 1
        # Per-shard digests prove disjoint histories.
        assert verdict["digests"][0] != verdict["digests"][1]
        for codes in verdict["exit_codes"].values():
            assert set(codes.values()) == {0}
        # One supervised workdir per shard, with logs for every replica.
        for shard in (0, 1):
            logs = sorted(
                p.name for p in (tmp_path / f"shard-{shard}").glob("node-*.log")
            )
            assert logs == [f"node-{pid}.log" for pid in range(4)]
