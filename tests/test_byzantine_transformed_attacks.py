"""Integration tests: the transformed protocol survives the attack gallery.

For every Byzantine behaviour in the catalogue, the correct processes of
a transformed system must keep Agreement, Termination and Vector
Validity (experiment E3), and the manifested faults must be detected by
the module the methodology assigns (experiment E4).
"""

from __future__ import annotations

import pytest

from repro.analysis.properties import (
    check_detection,
    check_vector_consensus,
)
from repro.byzantine import (
    TRANSFORMED_ATTACKS,
    transformed_attack,
    transformed_attack_profile,
    transformed_attacks_at,
)
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system

#: Attacks whose trigger needs the round-1 coordinator seat.
COORDINATOR_SEAT = {"equivocate-current", "wrong-cert-current"}

#: Attacks that manifest through messages (detectable via ``faulty``);
#: muteness is the one fault only the ◇M module can see.
MESSAGE_VISIBLE = {
    name
    for name, cls in TRANSFORMED_ATTACKS.items()
    if cls.profile.visible_in_messages
}


def attacker_seat(name: str) -> int:
    return 0 if name in COORDINATOR_SEAT else 3


def run_attack(name: str, seed: int = 0, n: int = 4, **kwargs):
    system = build_transformed_system(
        [f"v{i}" for i in range(n)],
        byzantine=transformed_attack(attacker_seat(name), name),
        seed=seed,
        **kwargs,
    )
    system.run(max_time=3_000)
    return system


class TestCatalog:
    def test_catalog_covers_the_fault_taxonomy(self):
        from repro.byzantine.faults import FailureClass

        classes = {
            transformed_attack_profile(name).failure_class
            for name in TRANSFORMED_ATTACKS
        }
        assert classes == set(FailureClass)

    def test_unknown_attack_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            transformed_attack(0, "nonsense")


@pytest.mark.parametrize("name", sorted(TRANSFORMED_ATTACKS))
class TestPropertiesSurviveEveryAttack:
    def test_agreement_termination_vector_validity(self, name):
        system = run_attack(name, seed=1)
        report = check_vector_consensus(system)
        assert report.all_hold, (name, report.violations)

    def test_no_correct_process_declared_faulty(self, name):
        system = run_attack(name, seed=2)
        detection = check_detection(system)
        assert detection.clean, (name, detection.false_positives)

    def test_under_random_delays(self, name):
        system = run_attack(name, seed=3, delay_model=UniformDelay(0.1, 2.5))
        report = check_vector_consensus(system)
        assert report.all_hold, (name, report.violations)


@pytest.mark.parametrize("name", sorted(MESSAGE_VISIBLE))
class TestDetectionCoverage:
    def test_manifested_fault_is_detected(self, name):
        # Some attacks only manifest when their trigger fires; several
        # seeds give every attack the opportunity.
        detected = False
        for seed in range(5):
            system = run_attack(name, seed=seed)
            if check_detection(system).detected_by_any:
                detected = True
                break
        assert detected, f"{name} never detected in 5 seeds"


class TestMutenessPath:
    def test_mute_attacker_suspected_not_declared(self):
        system = run_attack("mute", seed=4)
        detection = check_detection(system)
        assert 3 in detection.suspected_by_any
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_mute_coordinator_costs_a_round(self):
        system = build_transformed_system(
            [f"v{i}" for i in range(4)],
            byzantine=transformed_attack(0, "mute"),
            seed=5,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        deciders = [p for p in system.processes if p.pid != 0 and p.decided]
        assert all(p.decision_round >= 2 for p in deciders)


class TestMultipleAttackers:
    def test_two_attackers_within_bound(self):
        # n = 7 tolerates F = 2.
        system = build_transformed_system(
            [f"v{i}" for i in range(7)],
            byzantine=transformed_attacks_at(
                {3: "corrupt-vector", 5: "forged-decide"}
            ),
            seed=6,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations
        detection = check_detection(system)
        assert detection.detected_by_any

    def test_mixed_mute_and_corrupt(self):
        system = build_transformed_system(
            [f"v{i}" for i in range(7)],
            byzantine=transformed_attacks_at({2: "mute", 4: "corrupt-vector"}),
            seed=7,
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_attacker_count_beyond_f_rejected_by_builder(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_transformed_system(
                [f"v{i}" for i in range(4)],
                byzantine=transformed_attacks_at({1: "mute", 2: "mute"}),
            )


class TestDetectionAttribution:
    def test_signature_attacks_blame_the_channel_sender(self):
        system = run_attack("impersonation", seed=8)
        reports = [
            r
            for pid in system.correct_pids
            for r in system.processes[pid].monitor_bank.reports
        ]
        assert any(
            "signature module" in r.reason and r.culprit == 3 for r in reports
        )

    def test_corrupt_vector_blamed_via_certificates(self):
        system = run_attack("corrupt-vector", seed=9)
        reports = [
            r
            for pid in system.correct_pids
            for r in system.processes[pid].monitor_bank.reports
        ]
        assert any(r.culprit == 3 for r in reports)

    def test_equivocation_reported_as_equivocation(self):
        system = run_attack("equivocate-init", seed=10)
        reports = [
            r
            for pid in system.correct_pids
            for r in system.processes[pid].monitor_bank.reports
        ]
        assert any("equivocation" in r.reason for r in reports)
