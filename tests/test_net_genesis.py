"""Tests: genesis files and the hello handshake domain (repro.net.genesis)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.net.genesis import Genesis
from repro.net.messages import ROLE_CLIENT, ROLE_REPLICA, Hello


def genesis(**overrides) -> Genesis:
    base = Genesis(
        addresses=(
            ("127.0.0.1", 9001),
            ("127.0.0.1", 9002),
            ("127.0.0.1", 9003),
            ("127.0.0.1", 9004),
        )
    )
    return replace(base, **overrides)


class TestGenesisValidation:
    def test_defaults_validate(self):
        genesis().validate()

    def test_address_count_must_match_replicas(self):
        with pytest.raises(ConfigurationError):
            genesis(n_replicas=5).validate()

    def test_bad_port_rejected(self):
        bad = genesis().with_addresses(
            (("127.0.0.1", 9001),) * 3 + (("127.0.0.1", 0),)
        )
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_service_knobs_are_checked_too(self):
        with pytest.raises(ConfigurationError):
            genesis(window=0).validate()
        with pytest.raises(ConfigurationError):
            genesis(max_clients=0).validate()

    def test_address_of_range(self):
        assert genesis().address_of(3) == ("127.0.0.1", 9004)
        with pytest.raises(ConfigurationError):
            genesis().address_of(4)


class TestGenesisPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        original = genesis(name="rt", seed=13)
        path = original.save(tmp_path / "genesis.json")
        assert Genesis.load(path) == original

    def test_genesis_id_is_content_addressed(self, tmp_path):
        a = genesis(seed=1)
        b = genesis(seed=2)
        assert a.genesis_id() == genesis(seed=1).genesis_id()
        assert a.genesis_id() != b.genesis_id()

    def test_unknown_keys_rejected(self):
        data = genesis().to_json()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError):
            Genesis.from_json(data)

    def test_malformed_documents_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Genesis.from_json([1, 2, 3])
        data = genesis().to_json()
        data["addresses"] = "nope"
        with pytest.raises(ConfigurationError):
            Genesis.from_json(data)
        target = tmp_path / "broken.json"
        target.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            Genesis.load(target)
        with pytest.raises(ConfigurationError):
            Genesis.load(tmp_path / "absent.json")


class TestHelloHandshake:
    def test_replica_hello_verifies_at_its_target_only(self):
        g = genesis(seed=5)
        hello = g.hello_for(1, 2, ROLE_REPLICA)
        assert g.hello_valid(hello, 2)
        assert not g.hello_valid(hello, 3)  # not replayable at another node

    def test_client_hello_verifies(self):
        g = genesis(seed=5)
        client_pid = g.n_replicas  # client index 0
        hello = g.hello_for(client_pid, 0, ROLE_CLIENT)
        assert g.hello_valid(hello, 0)

    def test_cross_genesis_hello_rejected(self):
        a, b = genesis(seed=5), genesis(seed=6)
        assert not b.hello_valid(a.hello_for(1, 2, ROLE_REPLICA), 2)

    def test_role_and_range_confusion_rejected(self):
        g = genesis(seed=5)
        hello = g.hello_for(1, 2, ROLE_REPLICA)
        assert not g.hello_valid(replace(hello, role=ROLE_CLIENT), 2)
        assert not g.hello_valid(replace(hello, peer=0), 2)
        assert not g.hello_valid(replace(hello, role="admin"), 2)
        out_of_range = Hello(
            cluster=g.genesis_id(), peer=99, role=ROLE_REPLICA, mac=hello.mac
        )
        assert not g.hello_valid(out_of_range, 2)

    def test_tampered_mac_rejected(self):
        g = genesis(seed=5)
        hello = g.hello_for(1, 2, ROLE_REPLICA)
        forged = replace(hello, mac=b"\x00" * max(1, len(hello.mac)))
        assert not g.hello_valid(forged, 2)

    def test_garbage_hello_is_a_rejection_not_a_crash(self):
        g = genesis(seed=5)
        assert not g.hello_valid(
            Hello(cluster=123, peer="x", role=None, mac=object()), 2  # type: ignore[arg-type]
        )
