"""Tests: fault-plan schema, ids, validation and schema-version gates.

Covers the fidelity-neutral scenario document of ``repro.faults``
(docs/FAULTS.md): JSON round-trips, content-hash id stability, the
validation guard rails, the shared injector's determinism, and the
forward-compatibility gates — a plan or campaign artifact written by a
*newer* schema than the installed code must fail as a configuration
error (CLI exit 2), never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.certificates import SignedMessage
from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_PRESETS,
    FAULTS_SCHEMA,
    FaultPlan,
    LinkFaultInjector,
    check_faults_schema,
    flip_signed_payload,
)
from repro.messages.consensus import Init, VCurrent
from repro.replication.log import SlotEnvelope
from tests.helpers import SignedWorkbench


class TestRoundTrip:
    def test_config_round_trip_preserves_identity(self):
        plan = FaultPlan(
            name="rt",
            seed=5,
            requests=12,
            duration=9.0,
            mutes=((1, 2.0),),
            kills=(),
            partitions=((1.0, 3.0, "0,1|2,3"),),
            loss=0.01,
            flips=((2, 1.0, 2),),
        )
        clone = FaultPlan.from_config(plan.to_config())
        assert clone == plan
        assert clone.plan_id == plan.plan_id

    def test_plan_id_is_stable_content_hash(self):
        plan = FaultPlan(name="stable", seed=3)
        assert plan.plan_id.startswith("f")
        assert len(plan.plan_id) == 13
        assert plan.plan_id == FaultPlan(name="stable", seed=3).plan_id
        assert plan.plan_id != FaultPlan(name="stable", seed=4).plan_id

    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan(name="disk", seed=7, kills=((2, 3.0, 6.0),))
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded == plan
        document = json.loads(path.read_text())
        # A plan without zoo clauses is v1-expressible and is tagged with
        # the lowest schema version able to express it.
        assert document["schema"] == "repro.faults/v1"
        assert document["schema"] == plan.schema_tag

    def test_presets_validate_and_have_distinct_ids(self):
        for name, plans in FAULT_PRESETS.items():
            ids = set()
            for plan in plans:
                plan.validate()
                ids.add(plan.plan_id)
            assert len(ids) == len(plans), name


class TestValidation:
    def test_pid_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(mutes=((9, 1.0),)).validate()

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(loss=1.0).validate()

    def test_partition_must_heal_inside_the_window(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                duration=5.0, partitions=((1.0, 6.0, "0,1|2,3"),)
            ).validate()

    def test_rejoin_before_kill(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(kills=((1, 5.0, 2.0),)).validate()

    def test_unknown_attack_name(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(collusion=((1, "no-such-attack"),)).validate()

    def test_flip_sender_must_be_correct(self):
        # The bit-flip family corrupts a *correct* sender's traffic; the
        # same pid cannot also be a process fault.
        with pytest.raises(ConfigurationError):
            FaultPlan(mutes=((1, 2.0),), flips=((1, 1.0, 1),)).validate()

    def test_too_many_process_faults(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                mutes=((0, 1.0),), kills=((1, 2.0, None),)
            ).validate()


class TestSchemaGate:
    def test_current_schema_accepted(self):
        check_faults_schema(FAULTS_SCHEMA)

    def test_v1_schema_still_accepted(self):
        check_faults_schema("repro.faults/v1")

    def test_newer_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="newer than"):
            check_faults_schema("repro.faults/v3")

    def test_alien_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            check_faults_schema("repro.campaign/v1")

    def test_loading_a_v3_plan_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"schema": "repro.faults/v3", "config": {"name": "future"}}
            )
        )
        with pytest.raises(ConfigurationError, match="newer than"):
            FaultPlan.load(path)

    def test_cli_exits_2_on_a_v3_plan(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"schema": "repro.faults/v3", "config": {"name": "future"}}
            )
        )
        assert main(["campaign", "faults", "--plan", str(path)]) == 2


class TestCampaignArtifactVersionGate:
    def test_replay_exits_2_on_a_newer_campaign_artifact(self, tmp_path):
        # A v2 artifact from some future release: `campaign replay` must
        # exit 2 (configuration error), not crash with a traceback.
        path = tmp_path / "future.jsonl"
        lines = [
            {"kind": "header", "schema": "repro.campaign/v2", "meta": {}},
            {"kind": "summary", "scenarios": 0},
        ]
        path.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n"
        )
        assert (
            main(
                [
                    "campaign", "replay", "s000000000000",
                    "--artifact", str(path),
                ]
            )
            == 2
        )

    def test_replay_exits_2_on_garbage_schema(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "header", "schema": "repro.campaign/vX", "meta": {}}
            )
            + "\n"
        )
        assert (
            main(
                [
                    "campaign", "replay", "s000000000000",
                    "--artifact", str(path),
                ]
            )
            == 2
        )


class TestFlipFamily:
    def _signed_current(self) -> SignedMessage:
        bench = SignedWorkbench(4)
        body = VCurrent(
            sender=0, round=1, est_vect=bench.vector_for([0, 1, 2])
        )
        return bench.authorities[0].make(body)

    def test_flip_inverts_the_round_and_keeps_the_signature(self):
        signed = self._signed_current()
        flipped = flip_signed_payload(signed)
        assert flipped is not None
        assert flipped.body.round == signed.body.round ^ 1
        assert flipped.signature == signed.signature
        bench = SignedWorkbench(4)
        assert bench.verify(signed)
        assert not bench.verify(flipped)

    def test_flip_recurses_into_slot_envelopes(self):
        signed = self._signed_current()
        envelope = SlotEnvelope(slot=3, inner=signed)
        flipped = flip_signed_payload(envelope)
        assert flipped is not None
        assert flipped.slot == 3
        assert flipped.inner.body.round == signed.body.round ^ 1

    def test_only_current_bodies_are_eligible(self):
        bench = SignedWorkbench(4)
        init = bench.signed_init(0)
        assert flip_signed_payload(init) is None
        assert flip_signed_payload("not a message") is None


class TestInjectorDeterminism:
    def test_identical_plans_draw_identical_link_streams(self):
        plan = FaultPlan(
            name="det", seed=21, loss=0.3, duplication=0.2, reorder=0.4
        )
        first = LinkFaultInjector(plan)
        second = LinkFaultInjector(plan)

        def trace(injector):
            decisions = []
            for step in range(50):
                src, dst = step % 4, (step + 1) % 4
                out = injector.plan_deliveries(0.5, src, dst, f"m{step}")
                decisions.append(
                    None if out is None else [(p, d) for p, d in out]
                )
            return decisions

        assert trace(first) == trace(second)

    def test_per_link_streams_are_independent_of_consumption_order(self):
        # Fidelity 3 splits the injector per process: each replica only
        # consumes its own outbound links. Draw order across *different*
        # links must therefore not matter.
        plan = FaultPlan(name="split", seed=22, loss=0.5)
        whole = LinkFaultInjector(plan)
        split = LinkFaultInjector(plan)
        # Interleaved consumption on the whole injector...
        interleaved = {(0, 1): [], (2, 3): []}
        for step in range(20):
            interleaved[0, 1].append(
                whole.plan_deliveries(1.0, 0, 1, f"a{step}")
            )
            interleaved[2, 3].append(
                whole.plan_deliveries(1.0, 2, 3, f"b{step}")
            )
        # ...versus sequential consumption, one link at a time.
        sequential = {
            (0, 1): [
                split.plan_deliveries(1.0, 0, 1, f"a{step}")
                for step in range(20)
            ],
            (2, 3): [
                split.plan_deliveries(1.0, 2, 3, f"b{step}")
                for step in range(20)
            ],
        }
        assert interleaved == sequential
        assert any(out == [] for out in interleaved[0, 1])  # losses drawn

    def test_muted_pid_swallows_both_directions(self):
        plan = FaultPlan(name="mute", seed=1, mutes=((1, 2.0),))
        injector = LinkFaultInjector(plan)
        assert injector.plan_deliveries(1.0, 1, 0, "early") is None
        assert injector.plan_deliveries(3.0, 1, 0, "from-muted") == []
        assert injector.plan_deliveries(3.0, 0, 1, "to-muted") == []

    def test_partition_withholds_until_the_heal_instant(self):
        plan = FaultPlan(
            name="part", seed=1, partitions=((2.0, 5.0, "0,1|2,3"),)
        )
        injector = LinkFaultInjector(plan)
        assert injector.plan_deliveries(1.0, 0, 2, "before") is None
        held = injector.plan_deliveries(3.0, 0, 2, "cross")
        assert held == [("cross", 2.0)]  # delivered at the heal, t=5
        assert injector.plan_deliveries(3.0, 0, 1, "same-side") is None
        assert injector.plan_deliveries(5.0, 0, 2, "after") is None
