"""Unit and property tests: the certificate framework."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.certificates import (
    Certificate,
    CertificateDigest,
    EMPTY_CERTIFICATE,
    SignedMessage,
)
from repro.errors import CertificateError
from repro.messages.consensus import Init, VNext

from tests.helpers import SignedWorkbench


@pytest.fixture
def bench():
    return SignedWorkbench(4)


class TestCertificate:
    def test_empty_certificate(self):
        assert len(EMPTY_CERTIFICATE) == 0
        assert list(EMPTY_CERTIFICATE) == []

    def test_deduplicates_entries(self, bench):
        init = bench.signed_init(0)
        cert = Certificate((init, init))
        assert len(cert) == 1

    def test_order_independent_digest(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        assert Certificate((a, b)).digest() == Certificate((b, a)).digest()

    def test_different_content_different_digest(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        assert Certificate((a,)).digest() != Certificate((b,)).digest()

    def test_add_returns_new_certificate(self, bench):
        a = bench.signed_init(0)
        cert = EMPTY_CERTIFICATE.add(a)
        assert len(cert) == 1
        assert len(EMPTY_CERTIFICATE) == 0

    def test_union(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        union = Certificate((a,)).union(Certificate((b,)))
        assert len(union) == 2
        assert union.senders() == frozenset({0, 1})

    def test_union_dedups_shared_entries(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        union = Certificate((a, b)).union(Certificate((b,)))
        assert len(union) == 2

    def test_of_type_filters_bodies(self, bench):
        init = bench.signed_init(0)
        nxt = bench.authorities[1].make(VNext(sender=1, round=1), EMPTY_CERTIFICATE)
        cert = Certificate((init, nxt))
        assert [m.body for m in cert.of_type(Init)] == [init.body]
        assert [m.body for m in cert.of_type(VNext)] == [nxt.body]

    def test_contains(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        cert = Certificate((a,))
        assert a in cert
        assert b not in cert

    def test_contains_is_pruning_invariant(self, bench):
        current = bench.coordinator_current()
        cert = Certificate((current,))
        assert current.light() in cert

    def test_equality_by_digest(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        assert Certificate((a, b)) == Certificate((b, a))
        assert Certificate((a,)) != Certificate((b,))

    def test_filter(self, bench):
        a, b = bench.signed_init(0), bench.signed_init(1)
        cert = Certificate((a, b))
        only_zero = cert.filter(lambda sm: sm.body.sender == 0)
        assert only_zero.senders() == frozenset({0})


class TestSignedMessagePruning:
    def test_light_preserves_signature_validity(self, bench):
        current = bench.coordinator_current()
        assert bench.verify(current)
        assert bench.verify(current.light())

    def test_light_drops_certificate_body(self, bench):
        current = bench.coordinator_current()
        light = current.light()
        assert not light.has_full_cert
        assert isinstance(light.cert, CertificateDigest)
        with pytest.raises(CertificateError):
            light.full_cert()

    def test_light_preserves_cert_digest(self, bench):
        current = bench.coordinator_current()
        assert current.cert_digest == current.light().cert_digest

    def test_digest_invariant_under_entry_pruning(self, bench):
        """The cornerstone of the pruning scheme: a certificate's digest
        does not change when its entries' own certificates are pruned."""
        current = bench.coordinator_current()
        full = Certificate((current,))
        pruned = Certificate((current.light(),))
        assert full.digest() == pruned.digest()

    def test_pruned_depth_zero_equals_light(self, bench):
        current = bench.coordinator_current()
        assert current.pruned(0).cert == current.light().cert

    def test_pruned_keeps_one_level(self, bench):
        current = bench.coordinator_current(
            round_number=2, next_votes=bench.next_quorum(1)
        )
        relay = bench.relay_current(2, current)
        pruned = relay.pruned(2)
        assert pruned.has_full_cert
        inner = pruned.full_cert().entries[0]
        assert inner.has_full_cert  # depth 2 keeps the inner CURRENT's cert

    def test_light_canonical_stable_under_pruning(self, bench):
        current = bench.coordinator_current()
        assert current.light_canonical() == current.light().light_canonical()


class TestCertificationAuthority:
    def test_make_and_verify(self, bench):
        message = bench.signed_init(2)
        assert bench.verify(message)

    def test_cannot_sign_for_other_identity(self, bench):
        with pytest.raises(CertificateError):
            bench.authorities[0].make(Init(sender=1, value="x"), EMPTY_CERTIFICATE)

    def test_wrong_signer_detected(self, bench):
        message = bench.signed_init(0)
        stolen = SignedMessage(
            body=Init(sender=1, value="v0"),
            cert=EMPTY_CERTIFICATE,
            signature=message.signature,
        )
        assert not bench.verify(stolen)

    def test_tampered_body_detected(self, bench):
        message = bench.signed_init(0)
        tampered = SignedMessage(
            body=Init(sender=0, value="evil"),
            cert=message.cert,
            signature=message.signature,
        )
        assert not bench.verify(tampered)

    def test_tampered_certificate_detected(self, bench):
        current = bench.coordinator_current()
        other_cert = Certificate((bench.signed_init(3, "sneaky"),))
        tampered = SignedMessage(
            body=current.body, cert=other_cert, signature=current.signature
        )
        assert not bench.verify(tampered)

    def test_forged_signature_detected(self, bench):
        body = Init(sender=0, value="v0")
        draft = SignedMessage(
            body=body,
            cert=EMPTY_CERTIFICATE,
            signature=bench.scheme.forge(0, None),
        )
        forged = SignedMessage(
            body=body,
            cert=EMPTY_CERTIFICATE,
            signature=bench.scheme.forge(0, draft.signed_payload()),
        )
        assert not bench.verify(forged)


@given(n=st.integers(min_value=2, max_value=9), seed=st.integers(0, 100))
def test_certificate_digest_deterministic_across_processes(n, seed):
    """Two independently-built identical certificates share a digest."""
    bench_a = SignedWorkbench(n, seed=seed)
    bench_b = SignedWorkbench(n, seed=seed)
    cert_a = Certificate(tuple(bench_a.signed_init(p) for p in range(n)))
    cert_b = Certificate(tuple(bench_b.signed_init(p) for p in range(n)))
    assert cert_a.digest() == cert_b.digest()
