"""Tests: the small-scope model checker (repro.mc).

Covers the four contracts docs/MODELCHECK.md promises:

* **Determinism** — a fixed config yields a byte-identical
  ``repro.mc/v1`` artifact on every run, and an interrupted exploration
  resumed from its truncated artifact converges to the same bytes;
* **Digest hygiene** — the crypto verdict caches never leak into state
  digests: a bounded run visits the identical digest set with caching
  on and off;
* **Soundness** — the unmutated protocol has no reachable violation in
  the bounded scope, with or without the scripted adversary;
* **Sensitivity (the checker self-test)** — the shipped known-bad
  mutation (a decision guard that accepts any CURRENT quorum) is found
  by the depth-first hunt, replays against the live stack, and the
  emitted counterexample scenario shrinks in a handful of steps.
"""

from __future__ import annotations

import json

import pytest

from repro.crypto.cache import caching_disabled
from repro.errors import ConfigurationError, ProtocolError
from repro.mc import (
    ARTIFACT_FORMAT,
    Explorer,
    McConfig,
    Stepper,
    check_state,
    counterexample_scenario,
    state_digest,
)
from repro.mc.mutations import ACCEPT_ANY_CURRENT_QUORUM, apply_mutation
from repro.observability.registry import MODULE_MC, MetricsRegistry

#: The bounded sweep most tests use: ~80 states, well under a second.
SWEEP = McConfig(max_depth=2)

#: The counterexample hunt of docs/MODELCHECK.md: a depth-first dive
#: with an equivocating coordinator under the known-bad mutation.
HUNT = McConfig(
    strategy="dfs",
    adversary=0,
    alphabet=("equivocate-current",),
    mutation=ACCEPT_ANY_CURRENT_QUORUM,
    stop_on_violation=True,
    max_depth=40,
    max_rounds=3,
)


class TestConfig:
    def test_round_trips_through_config(self):
        assert McConfig.from_config(HUNT.to_config()) == HUNT

    def test_config_id_is_stable(self):
        assert HUNT.config_id == McConfig.from_config(HUNT.to_config()).config_id

    @pytest.mark.parametrize(
        "bad",
        [
            dict(n=5),
            dict(f=2),
            dict(alphabet=("equivocate-current",)),  # alphabet, no seat
            dict(adversary=1),  # seat, no alphabet
            dict(adversary=9, alphabet=("mute",)),
            dict(adversary=0, alphabet=("no-such-action",)),
            dict(strategy="random-walk"),
            dict(mutation="no-such-mutation"),
            dict(max_depth=0),
            dict(max_states=0),
            dict(adversary=0, alphabet=("suppress-d",), suppress_d=0),
            dict(adversary=0, alphabet=("suppress-d",), suppress_d=4),
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            McConfig(**bad).validate()


class TestStepper:
    def test_replay_reaches_the_same_digest(self):
        a = Stepper(SWEEP)
        path = []
        for _ in range(8):
            label = a.enabled()[0]
            a.apply(label)
            path.append(label)
        b = Stepper.replay(SWEEP, path)
        assert state_digest(a.system) == state_digest(b.system)

    def test_first_label_run_decides_without_violations(self):
        stepper = Stepper(McConfig(max_depth=64, max_rounds=4))
        for _ in range(200):
            labels = stepper.enabled()
            if not labels:
                break
            stepper.apply(labels[0])
        decisions = stepper.system.decisions()
        assert len(decisions) == 4
        assert len(set(decisions.values())) == 1
        assert check_state(stepper.system) == []

    def test_disabled_labels_raise(self):
        stepper = Stepper(SWEEP)
        with pytest.raises(ProtocolError):
            stepper.apply(("mute",))  # no adversary seat configured
        with pytest.raises(ProtocolError):
            stepper.apply(("bogus",))


class TestDeterminism:
    def test_artifacts_are_byte_identical_across_runs(self, tmp_path):
        metrics = MetricsRegistry()
        first = Explorer(SWEEP, tmp_path / "a.jsonl", metrics=metrics).run()
        second = Explorer(SWEEP, tmp_path / "b.jsonl").run()
        assert (tmp_path / "a.jsonl").read_bytes() == (
            tmp_path / "b.jsonl"
        ).read_bytes()
        assert first.visited == second.visited
        assert first.stop_reason == "max-depth"
        assert metrics.counter_total(MODULE_MC, "mc_states_explored") == (
            first.states_explored
        )
        assert metrics.counter_total(MODULE_MC, "mc_states_pruned") == (
            first.states_pruned
        )

    def test_resume_converges_to_the_straight_run_bytes(self, tmp_path):
        full = Explorer(SWEEP, tmp_path / "full.jsonl").run()
        straight = (tmp_path / "full.jsonl").read_bytes()
        lines = [line for line in straight.split(b"\n") if line]
        header = json.loads(lines[0])
        assert header["format"] == ARTIFACT_FORMAT
        # Interrupt after the first complete layer, plus a torn write.
        partial = b"\n".join(lines[:2]) + b'\n{"type":"lay'
        (tmp_path / "part.jsonl").write_bytes(partial)
        resumed = Explorer.resume(tmp_path / "part.jsonl")
        assert (tmp_path / "part.jsonl").read_bytes() == straight
        assert resumed.visited == full.visited

    def test_resume_of_a_finished_artifact_reports_without_exploring(
        self, tmp_path
    ):
        full = Explorer(SWEEP, tmp_path / "done.jsonl").run()
        before = (tmp_path / "done.jsonl").read_bytes()
        again = Explorer.resume(tmp_path / "done.jsonl")
        assert (tmp_path / "done.jsonl").read_bytes() == before
        assert again.states_explored == full.states_explored
        assert again.stop_reason == full.stop_reason


class TestCacheEquivalence:
    def test_visited_digests_identical_with_caching_off(self, tmp_path):
        cached = Explorer(SWEEP, tmp_path / "cached.jsonl").run()
        with caching_disabled():
            uncached = Explorer(SWEEP, tmp_path / "uncached.jsonl").run()
        assert cached.visited == uncached.visited
        assert (tmp_path / "cached.jsonl").read_bytes() == (
            tmp_path / "uncached.jsonl"
        ).read_bytes()


class TestSoundness:
    def test_unmutated_adversary_sweep_is_clean(self, tmp_path):
        config = McConfig(
            adversary=0, alphabet=("equivocate-current",), max_depth=2
        )
        result = Explorer(config, tmp_path / "clean.jsonl").run()
        assert result.violations == []
        assert result.states_explored > 0


class TestSuppressD:
    """The zoo's message adversary at model-checker scale."""

    CONFIG = McConfig(
        adversary=0,
        alphabet=("suppress-d",),
        max_depth=64,
        max_rounds=4,
        suppress_d=1,
    )

    def _drive_to_suppress(self) -> Stepper:
        stepper = Stepper(self.CONFIG)
        for _ in range(200):
            labels = stepper.enabled()
            if not labels:
                pytest.fail("suppress never became enabled")
            if labels[0][0] == "suppress":
                return stepper
            stepper.apply(labels[0])
        pytest.fail("suppress never became enabled")

    def test_budget_is_per_round(self):
        stepper = self._drive_to_suppress()
        target = next(l for l in stepper.enabled() if l[0] == "suppress")
        stepper.apply(target)
        # d=1: the round's budget is spent, the label family vanishes.
        assert stepper.suppressed == {1: 1}
        assert all(l[0] != "suppress" for l in stepper.enabled())

    def test_replay_reaches_the_same_digest(self):
        stepper = self._drive_to_suppress()
        target = next(l for l in stepper.enabled() if l[0] == "suppress")
        stepper.apply(target)
        twin = Stepper.replay(self.CONFIG, stepper.path)
        assert state_digest(twin.system) == state_digest(stepper.system)
        assert twin.suppressed == stepper.suppressed

    def test_unmutated_suppress_sweep_is_clean(self, tmp_path):
        config = McConfig(
            adversary=0, alphabet=("suppress-d",), max_depth=3
        )
        result = Explorer(config, tmp_path / "suppress.jsonl").run()
        assert result.violations == []
        assert result.states_explored > 0


class TestSensitivity:
    def test_known_bad_mutation_is_found_and_shrinks(self, tmp_path):
        from repro.campaign import shrink_scenario

        result = Explorer(HUNT, tmp_path / "hunt.jsonl").run()
        assert result.stop_reason == "violation"
        violation = result.violations[0]
        assert "certificate validity" in violation.kinds()

        # The recorded path replays against the live (mutated) stack.
        with apply_mutation(HUNT.mutation):
            stepper = Stepper.replay(HUNT, violation.path)
            assert sorted(check_state(stepper.system)) == sorted(
                violation.violations
            )
            scenario = counterexample_scenario(HUNT, violation.path)
            shrink = shrink_scenario(scenario)
        assert len(shrink.steps) <= 5
        assert shrink.minimal.attacks == ((0, "equivocate-current"),)

    def test_hunt_artifact_is_byte_identical_across_runs(self, tmp_path):
        Explorer(HUNT, tmp_path / "h1.jsonl").run()
        Explorer(HUNT, tmp_path / "h2.jsonl").run()
        assert (tmp_path / "h1.jsonl").read_bytes() == (
            tmp_path / "h2.jsonl"
        ).read_bytes()
