"""Tests: the cross-fidelity judge and the deterministic report contract.

The headline artifact of ``repro.faults`` (docs/FAULTS.md) is the
:class:`CrossFidelityReport`: one verdict per (plan, fidelity), an
``agree`` flag per plan, and byte-identical canonical JSON across runs
at the deterministic fidelities. These tests pin the judge's oracle
catalogue on hand-built observations, then run the real smoke matrix at
fidelities 1–2 twice and ``assert`` the bytes match. The subprocess
fidelity is exercised separately (``tests/test_faults_net.py`` and
``make faults-smoke``).
"""

from __future__ import annotations

import json

from repro.faults import (
    FAULT_PRESETS,
    FaultPlan,
    FidelityObservation,
    judge,
    live_correct,
    run_cross_fidelity,
)


def _healthy(plan: FaultPlan, fidelity: str = "sim") -> FidelityObservation:
    """An observation every oracle is happy with."""
    live = live_correct(plan)
    return FidelityObservation(
        fidelity=fidelity,
        completed=plan.requests,
        committed={pid: plan.requests for pid in live},
        digests={pid: "d" * 16 for pid in live},
        transfers={pid: 1 for pid in plan.rejoining_pids},
        flips_injected=len(plan.flips),
        signature_rejections=len(plan.flips),
    )


class TestLiveCorrect:
    def test_muted_and_dead_replicas_are_excused(self):
        plan = FaultPlan(
            name="x",
            mutes=((1, 2.0),),
            duration=12.0,
        )
        assert live_correct(plan) == frozenset({0, 2, 3})

    def test_rejoining_replicas_are_still_accountable(self):
        plan = FaultPlan(name="x", duration=12.0, kills=((2, 3.0, 6.0),))
        assert live_correct(plan) == frozenset({0, 1, 2, 3})
        gone = FaultPlan(name="x", duration=12.0, kills=((2, 3.0, None),))
        assert live_correct(gone) == frozenset({0, 1, 3})


class TestJudge:
    def test_healthy_run_passes(self):
        plan = FaultPlan(name="ok", requests=8)
        verdict, violations = judge(plan, _healthy(plan))
        assert (verdict, violations) == ("pass", [])

    def test_incomplete_workload_fails(self):
        plan = FaultPlan(name="slow", requests=8)
        observation = _healthy(plan)
        observation.completed = 5
        verdict, violations = judge(plan, observation)
        assert verdict == "fail"
        assert any("progress" in v for v in violations)

    def test_divergent_digests_fail(self):
        plan = FaultPlan(name="split", requests=8)
        observation = _healthy(plan)
        observation.digests[3] = "e" * 16
        verdict, violations = judge(plan, observation)
        assert verdict == "fail"
        assert any("diverge" in v for v in violations)

    def test_missing_transfer_fails_recovery(self):
        plan = FaultPlan(
            name="rejoin", requests=8, duration=12.0, kills=((2, 3.0, 6.0),)
        )
        observation = _healthy(plan)
        observation.transfers = {}
        verdict, violations = judge(plan, observation)
        assert verdict == "fail"
        assert any("recovery" in v for v in violations)

    def test_undetected_flip_fails(self):
        plan = FaultPlan(name="flip", requests=8, flips=((1, 1.0, 2),))
        observation = _healthy(plan)
        observation.signature_rejections = 0
        observation.declared = ()
        verdict, violations = judge(plan, observation)
        assert verdict == "fail"
        assert any("detection" in v for v in violations)

    def test_flip_detected_by_declaration_passes(self):
        plan = FaultPlan(name="flip", requests=8, flips=((1, 1.0, 2),))
        observation = _healthy(plan)
        observation.signature_rejections = 0
        observation.declared = (
            (0, 1, "signature module: invalid signature"),
        )
        assert judge(plan, observation) == ("pass", [])

    def test_flip_misattributed_to_the_automaton_fails(self):
        # The innocent flipped sender must never be convicted by the
        # behaviour automaton (Figure 4) on a noise-free plan.
        plan = FaultPlan(name="flip", requests=8, flips=((1, 1.0, 2),))
        observation = _healthy(plan)
        observation.declared = (
            (0, 1, "unexpected CURRENT in round 2"),
        )
        verdict, violations = judge(plan, observation)
        assert verdict == "fail"
        assert any("attribution" in v for v in violations)

    def test_misattribution_oracle_waived_under_link_noise(self):
        plan = FaultPlan(
            name="flip-noise", requests=8, flips=((1, 1.0, 2),), loss=0.05
        )
        observation = _healthy(plan)
        observation.declared = (
            (0, 1, "unexpected CURRENT in round 2"),
        )
        assert judge(plan, observation) == ("pass", [])

    def test_vulnerable_expectation_downgrades_fail(self):
        plan = FaultPlan(name="known", requests=8, expect="vulnerable")
        observation = _healthy(plan)
        observation.completed = 0
        verdict, _violations = judge(plan, observation)
        assert verdict == "expected-vulnerability"


class TestCrossFidelityReport:
    def test_smoke_matrix_agrees_and_is_byte_identical(self):
        plans = FAULT_PRESETS["smoke"]
        first = run_cross_fidelity(plans, ("sim", "loopback"))
        assert first.ok
        assert first.all_agree
        for result in first.results:
            assert result.verdicts == {"sim": "pass", "loopback": "pass"}
        second = run_cross_fidelity(plans, ("sim", "loopback"))
        assert first.dumps() == second.dumps()

    def test_report_record_shape(self):
        plan = FaultPlan(name="tiny", seed=2, requests=6, duration=6.0)
        report = run_cross_fidelity((plan,), ("sim",))
        record = json.loads(report.dumps())
        assert record["schema"] == "repro.faults/v1"
        assert record["kind"] == "cross-fidelity-report"
        (entry,) = record["plans"]
        assert entry["plan_id"] == plan.plan_id
        assert entry["agree"] is True
        assert "observation" in entry["fidelities"]["sim"]

    def test_net_observation_detail_is_excluded_from_the_record(self):
        # Fidelity 3 is verdict-stable only: its raw numbers vary run to
        # run, so the canonical record must not contain them.
        plan = FaultPlan(name="tiny", seed=2, requests=6, duration=6.0)
        result_plan = run_cross_fidelity((plan,), ("sim",)).results[0]
        verdict, violations, observation = result_plan.outcomes["sim"]
        result_plan.outcomes["net"] = (verdict, violations, observation)
        record = result_plan.to_record()
        assert "observation" not in record["fidelities"]["net"]
        assert record["fidelities"]["net"]["verdict"] == verdict


class TestRehunt:
    """The flake-hunting mode: disagreeing plans re-run k times."""

    @staticmethod
    def _fake_run_plan(flaky_after: int):
        """A run_plan double: sim is always healthy; loopback reports a
        wrong digest for the first ``flaky_after`` calls, then heals —
        the archetypal flaky fidelity."""
        calls = {"loopback": 0}

        def fake(plan, fidelity, *, workdir=None, timeout=180.0):
            observation = _healthy(plan, fidelity)
            if fidelity == "loopback":
                calls["loopback"] += 1
                if calls["loopback"] <= flaky_after:
                    observation.digests = dict(observation.digests)
                    observation.digests[0] = "deadbeef" * 2
            return observation

        return fake

    def test_disagreeing_plan_gets_a_verdict_distribution(self, monkeypatch):
        import repro.faults.report as report_module

        monkeypatch.setattr(
            report_module, "run_plan", self._fake_run_plan(flaky_after=1)
        )
        plan = FaultPlan(name="flaky", seed=3, requests=6, duration=6.0)
        report = report_module.run_cross_fidelity(
            (plan,), ("sim", "loopback"), rehunt=3
        )
        (result,) = report.results
        assert not result.agree
        assert result.rehunt is not None
        # Original run + 3 re-runs per fidelity.
        assert result.rehunt["sim"] == {"pass": 4}
        assert result.rehunt["loopback"] == {"fail": 1, "pass": 3}
        record = result.to_record()
        assert record["rehunt"]["loopback"] == {"fail": 1, "pass": 3}

    def test_agreeing_plans_are_never_rerun_and_stay_byte_identical(self):
        plan = FaultPlan(name="tiny", seed=2, requests=6, duration=6.0)
        plain = run_cross_fidelity((plan,), ("sim", "loopback"))
        hunted = run_cross_fidelity((plan,), ("sim", "loopback"), rehunt=5)
        assert hunted.results[0].rehunt is None
        assert "rehunt" not in hunted.results[0].to_record()
        assert plain.dumps() == hunted.dumps()

    def test_negative_rehunt_is_a_configuration_error(self):
        import pytest

        from repro.errors import ConfigurationError

        plan = FaultPlan(name="tiny", seed=2, requests=6, duration=6.0)
        with pytest.raises(ConfigurationError):
            run_cross_fidelity((plan,), ("sim",), rehunt=-1)
