"""Unit tests: process abstraction, world composition, traces."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProcessError
from repro.sim.network import FixedDelay
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.sim.world import World


class Echo(Process):
    """Replies 'pong' to every 'ping'."""

    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, src, payload):
        self.received.append((src, payload))
        if payload == "ping":
            self.send(src, "pong")


class Starter(Echo):
    def on_start(self):
        self.broadcast("ping")


class TimerUser(Process):
    def __init__(self):
        super().__init__()
        self.fired = []

    def on_start(self):
        self.set_timer("tick", 2.0)

    def on_timer(self, name):
        self.fired.append((name, self.now))


class TestProcess:
    def test_unbound_process_rejects_use(self):
        with pytest.raises(ProcessError):
            Echo().send(0, "x")

    def test_double_bind_rejected(self):
        world = World([Echo(), Echo()])
        with pytest.raises(ProcessError):
            world.processes[0].bind(world.processes[1].env)

    def test_pid_and_n(self):
        world = World([Echo(), Echo(), Echo()])
        assert [p.pid for p in world.processes] == [0, 1, 2]
        assert all(p.n == 3 for p in world.processes)

    def test_ping_pong(self):
        world = World([Starter(), Echo()], delay_model=FixedDelay(1.0))
        world.run()
        starter, echo = world.processes
        assert (0, "ping") in echo.received
        assert (1, "pong") in starter.received

    def test_broadcast_includes_self(self):
        world = World([Starter(), Echo()], delay_model=FixedDelay(1.0))
        world.run()
        starter = world.processes[0]
        assert (0, "ping") in starter.received

    def test_timer_fires_at_virtual_time(self):
        world = World([TimerUser()])
        world.run()
        assert world.processes[0].fired == [("tick", 2.0)]

    def test_timer_rearm_cancels_previous(self):
        class Rearm(TimerUser):
            def on_start(self):
                self.set_timer("tick", 5.0)
                self.set_timer("tick", 1.0)  # replaces the 5.0 instance

        world = World([Rearm()])
        world.run()
        assert world.processes[0].fired == [("tick", 1.0)]

    def test_cancel_timer(self):
        class Cancel(TimerUser):
            def on_start(self):
                self.set_timer("tick", 5.0)
                self.cancel_timer("tick")

        world = World([Cancel()])
        world.run()
        assert world.processes[0].fired == []


class TestWorldCrash:
    def test_crashed_process_stops_receiving(self):
        world = World([Starter(), Echo()], delay_model=FixedDelay(1.0))
        world.crash_at(1, 0.5)  # before the ping arrives
        world.run()
        assert world.processes[1].received == []

    def test_crashed_process_stops_sending(self):
        class LateSender(Process):
            def on_start(self):
                self.set_timer("go", 2.0)

            def on_timer(self, name):
                self.broadcast("late")

        world = World([LateSender(), Echo()], delay_model=FixedDelay(0.1))
        world.crash_at(0, 1.0)
        world.run()
        assert world.processes[1].received == []

    def test_crash_now(self):
        world = World([Echo(), Echo()])
        world.crash_now(0)
        assert world.is_crashed(0)
        assert not world.is_crashed(1)

    def test_crash_recorded_in_trace(self):
        world = World([Echo()])
        world.crash_at(0, 3.0)
        world.run()
        event = world.trace.first("crash")
        assert event is not None
        assert event.time == 3.0
        assert event.process == 0

    def test_crashed_timer_suppressed(self):
        world = World([TimerUser()])
        world.crash_at(0, 1.0)  # before the 2.0 timer
        world.run()
        assert world.processes[0].fired == []

    def test_unknown_pid_rejected(self):
        world = World([Echo()])
        with pytest.raises(ConfigurationError):
            world.crash_now(5)


class TestWorldLifecycle:
    def test_empty_world_rejected(self):
        with pytest.raises(ConfigurationError):
            World([])

    def test_double_start_rejected(self):
        world = World([Echo()])
        world.start()
        with pytest.raises(ConfigurationError):
            world.start()

    def test_run_autostarts(self):
        world = World([Starter(), Echo()])
        result = world.run()
        assert result.quiescent()


class TestTrace:
    def test_query_helpers(self):
        trace = Trace()
        trace.record(1.0, "a", process=0, x=1)
        trace.record(2.0, "b", process=1)
        trace.record(3.0, "a", process=1, x=2)
        assert trace.count("a") == 2
        assert len(trace.of_kind("b")) == 1
        assert len(trace.by_process(1)) == 2
        assert trace.first("a").detail["x"] == 1
        assert trace.last("a").detail["x"] == 2
        assert trace.first("a", process=1).time == 3.0
        assert trace.where(lambda e: e.time > 1.5) == trace.of_kind("b") + trace.of_kind("a")[1:]
        assert len(trace) == 3
