"""Tests: the deterministic key→shard map (docs/SHARDING.md).

The map is the only cross-shard agreement a sharded deployment needs,
so these properties carry the whole routing contract: every participant
— any process, any run, any machine — computes the same shard for a key
(sha256, not Python's salted ``hash``), every key lands in exactly one
shard, the load spreads within a constant factor of perfect balance,
and the map survives a shard genesis JSON round-trip unchanged.
"""

from __future__ import annotations

import hashlib
import random
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.shard import (
    ShardGenesis,
    key_for_shard,
    key_weight,
    route_counts,
    shard_of,
    shard_seed,
)

SRC = Path(__file__).resolve().parent.parent / "src"


class TestShardOf:
    @given(st.text(max_size=64), st.integers(min_value=1, max_value=64))
    def test_total_and_in_range(self, key, n_shards):
        shard = shard_of(key, n_shards)
        assert 0 <= shard < n_shards

    @given(st.text(max_size=64), st.integers(min_value=1, max_value=64))
    def test_deterministic_across_calls(self, key, n_shards):
        assert shard_of(key, n_shards) == shard_of(key, n_shards)

    @given(st.text(max_size=64))
    def test_one_shard_routes_everything_to_zero(self, key):
        assert shard_of(key, 1) == 0

    @given(st.text(max_size=64))
    def test_weight_is_the_sha256_prefix(self, key):
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        assert key_weight(key) == int.from_bytes(digest[:8], "big")

    def test_rejects_empty_shard_space(self):
        with pytest.raises(ConfigurationError):
            shard_of("k", 0)
        with pytest.raises(ConfigurationError):
            shard_of("k", -3)

    def test_deterministic_across_processes(self):
        """The routing contract: a fresh interpreter computes the same
        shards (guards against anything hash-seed dependent creeping in)."""
        keys = [f"k{i}" for i in range(32)] + ["", "sentinel-7-0", "α/β"]
        local = [shard_of(key, 4) for key in keys]
        script = (
            "from repro.shard import shard_of\n"
            f"keys = {keys!r}\n"
            "print([shard_of(k, 4) for k in keys])\n"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"},
            check=True,
        )
        assert eval(fresh.stdout.strip()) == local


class TestBalance:
    def test_balance_bound_over_random_sample(self):
        """4096 random keys over 4 shards: every shard within [0.5, 1.5]x
        of the perfect quarter. sha256 behaves like a uniform hash, so
        the bound has astronomically comfortable slack — a failure means
        the map broke, not that we got unlucky."""
        rng = random.Random(20260808)
        keys = [f"key-{rng.getrandbits(48):012x}" for _ in range(4096)]
        counts = route_counts(keys, 4)
        mean = len(keys) / 4
        assert set(counts) == {0, 1, 2, 3}
        assert sum(counts.values()) == len(keys)
        for shard, count in counts.items():
            assert 0.5 * mean <= count <= 1.5 * mean, (shard, count)

    @given(
        st.lists(st.text(max_size=16), max_size=64),
        st.integers(min_value=1, max_value=8),
    )
    def test_route_counts_cover_every_shard_key(self, keys, n_shards):
        counts = route_counts(keys, n_shards)
        assert set(counts) == set(range(n_shards))
        assert sum(counts.values()) == len(keys)


class TestGenesisRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.text(min_size=1, max_size=16), min_size=1, max_size=16),
    )
    def test_routing_stable_through_genesis_json(self, n_shards, keys):
        """shard_of computed via a genesis survives to_json/from_json."""
        addresses = tuple(
            tuple(("127.0.0.1", 20000 + shard * 10 + pid) for pid in range(4))
            for shard in range(n_shards)
        )
        genesis = ShardGenesis(n_shards=n_shards, addresses=addresses)
        reloaded = ShardGenesis.from_json(genesis.to_json())
        for key in keys:
            assert genesis.shard_of(key) == reloaded.shard_of(key)
            assert genesis.shard_of(key) == shard_of(key, n_shards)


class TestKeyForShard:
    def test_finds_a_key_in_every_shard(self):
        for n_shards in (1, 2, 4, 7):
            for shard in range(n_shards):
                key = key_for_shard("probe-", shard, n_shards)
                assert shard_of(key, n_shards) == shard

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ConfigurationError):
            key_for_shard("p-", 2, 2)

    def test_exhausted_scan_raises(self):
        with pytest.raises(ConfigurationError):
            key_for_shard("p-", 63, 64, limit=1)


class TestShardSeed:
    def test_distinct_per_shard(self):
        seeds = {shard_seed(7, shard) for shard in range(64)}
        assert len(seeds) == 64

    def test_distinct_from_base_seed(self):
        assert all(shard_seed(7, shard) != 7 for shard in range(64))
