"""End-to-end battery: randomized cross-cutting invariants.

Property-based sweeps across seeds, sizes, fault mixes and variants —
the widest net in the suite. Every run must satisfy the invariants the
paper proves; any counterexample hypothesis finds is a real bug (the
seed makes it replayable).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.properties import (
    check_detection,
    check_vector_consensus,
)
from repro.byzantine import TRANSFORMED_ATTACKS, transformed_attack
from repro.sim.network import ExponentialDelay, UniformDelay
from repro.systems import build_transformed_system

ATTACK_NAMES = sorted(TRANSFORMED_ATTACKS)


def proposals(n):
    return [f"v{i}" for i in range(n)]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.sampled_from([4, 5, 7]),
    attack=st.sampled_from(ATTACK_NAMES),
    attacker=st.integers(min_value=0, max_value=6),
    heavy_tail=st.booleans(),
)
def test_transformed_invariants_under_any_single_attack(
    seed, n, attack, attacker, heavy_tail
):
    """For every (seed, size, attack, seat, delay-shape): Agreement,
    Termination, Vector Validity hold and no correct process is ever
    declared faulty by a correct process."""
    attacker %= n
    delay = (
        ExponentialDelay(mean=1.0, base=0.1, cap=20.0)
        if heavy_tail
        else UniformDelay(0.1, 2.0)
    )
    system = build_transformed_system(
        proposals(n),
        byzantine=transformed_attack(attacker, attack),
        seed=seed,
        delay_model=delay,
    )
    system.run(max_time=5_000.0)
    report = check_vector_consensus(system)
    assert report.all_hold, (n, attack, attacker, seed, report.violations)
    detection = check_detection(system)
    assert detection.clean, (n, attack, attacker, seed, detection.false_positives)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    crash_time=st.floats(min_value=0.0, max_value=10.0),
    crashed=st.integers(min_value=0, max_value=3),
    muteness=st.sampled_from(["oracle", "timeout"]),
)
def test_transformed_invariants_under_any_crash(
    seed, crash_time, crashed, muteness
):
    system = build_transformed_system(
        proposals(4),
        crash_at={crashed: crash_time},
        seed=seed,
        muteness=muteness,
        delay_model=UniformDelay(0.1, 2.0),
    )
    system.run(max_time=5_000.0)
    report = check_vector_consensus(system)
    assert report.all_hold, (crashed, crash_time, seed, report.violations)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    attack_a=st.sampled_from(ATTACK_NAMES),
    attack_b=st.sampled_from(ATTACK_NAMES),
)
def test_two_simultaneous_attackers_at_n7(seed, attack_a, attack_b):
    from repro.byzantine import transformed_attacks_at

    system = build_transformed_system(
        proposals(7),
        byzantine=transformed_attacks_at({5: attack_a, 6: attack_b}),
        seed=seed,
        delay_model=UniformDelay(0.1, 2.0),
    )
    system.run(max_time=5_000.0)
    report = check_vector_consensus(system)
    assert report.all_hold, (attack_a, attack_b, seed, report.violations)
    assert check_detection(system).clean


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    attack=st.sampled_from(sorted(__import__(
        "repro.byzantine.ct_attacks", fromlist=["CT_ATTACKS"]
    ).CT_ATTACKS)),
    attacker=st.integers(min_value=0, max_value=3),
)
def test_transformed_ct_invariants_under_any_single_attack(seed, attack, attacker):
    from repro.byzantine.ct_attacks import ct_attack

    system = build_transformed_system(
        proposals(4),
        base="chandra-toueg",
        byzantine=ct_attack(attacker, attack),
        seed=seed,
        delay_model=UniformDelay(0.1, 2.0),
    )
    system.run(max_time=5_000.0)
    report = check_vector_consensus(system)
    assert report.all_hold, (attack, attacker, seed, report.violations)
    assert check_detection(system).clean


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    attack=st.sampled_from(ATTACK_NAMES),
)
def test_determinism_same_seed_same_outcome(seed, attack):
    """Bit-for-bit reproducibility: the cornerstone of the experiment
    harness."""

    def run():
        system = build_transformed_system(
            proposals(4),
            byzantine=transformed_attack(3, attack),
            seed=seed,
        )
        system.run(max_time=3_000.0)
        return (
            system.decisions(),
            tuple(sorted(p.faulty) for p in system.processes),
            system.world.network.messages_sent,
            system.world.scheduler.now,
        )

    assert run() == run()
