"""Security property fuzzing for the CT certificates (mirror of
``test_tamper_fuzz`` for the second case study)."""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, strategies as st

from repro.consensus.certification_ct import (
    build_justification,
    decide_problems,
    estimate_problems,
    propose_problems,
    select_proposal,
)
from repro.core.certificates import Certificate, SignedMessage
from repro.messages.ct import CtAck, CtDecide, CtEstimate, CtPropose
from tests.helpers import SignedWorkbench

BENCH = SignedWorkbench(4)


def _estimate(pid: int) -> SignedMessage:
    senders = [0, 1, 2]
    return BENCH.authorities[pid].make(
        CtEstimate(
            sender=pid, round=1, est_vect=BENCH.vector_for(senders), ts=0
        ),
        Certificate(tuple(BENCH.init_quorum(senders))),
    )


ESTIMATES = [_estimate(pid) for pid in range(3)]
PROPOSAL = BENCH.authorities[0].make(
    CtPropose(
        sender=0, round=1, est_vect=select_proposal(ESTIMATES).body.est_vect
    ),
    build_justification(ESTIMATES),
)
ACKS = [
    BENCH.authorities[pid]
    .make(CtAck(sender=pid, round=1), Certificate((PROPOSAL,)))
    .light()
    for pid in range(3)
]
DECIDE = BENCH.authorities[1].make(
    CtDecide(sender=1, est_vect=PROPOSAL.body.est_vect),
    Certificate((PROPOSAL, *ACKS)),
)


def caught(message: SignedMessage) -> bool:
    if not BENCH.verify(message):
        return True
    body = message.body
    if isinstance(body, CtEstimate):
        return bool(estimate_problems(message, BENCH.params, BENCH.verify))
    if isinstance(body, CtPropose):
        return bool(propose_problems(message, BENCH.params, BENCH.verify))
    if isinstance(body, CtDecide):
        return bool(decide_problems(message, BENCH.params, BENCH.verify))
    return False


def bitflip(message: SignedMessage, index: int) -> SignedMessage:
    mac = bytearray(message.signature.mac)
    mac[index % len(mac)] ^= 0x01
    return SignedMessage(
        body=message.body,
        cert=message.cert,
        signature=replace(message.signature, mac=bytes(mac)),
    )


class TestBaselines:
    def test_fixtures_are_clean(self):
        assert not caught(ESTIMATES[0])
        assert not caught(PROPOSAL)
        assert not caught(DECIDE)


class TestEstimateTampering:
    @given(index=st.integers(min_value=0, max_value=31))
    def test_signature_bitflips(self, index):
        assert caught(bitflip(ESTIMATES[1], index))

    @given(ts=st.integers(min_value=-2, max_value=9))
    def test_timestamp_rewrites(self, ts):
        tampered = SignedMessage(
            body=ESTIMATES[1].body.replace(ts=ts),
            cert=ESTIMATES[1].cert,
            signature=ESTIMATES[1].signature,
        )
        if ts == 0:
            assert not caught(tampered)
        else:
            assert caught(tampered)

    @given(
        slot=st.integers(min_value=0, max_value=3),
        value=st.text(min_size=1, max_size=6),
    )
    def test_vector_rewrites(self, slot, value):
        vector = list(ESTIMATES[1].body.est_vect)
        if vector[slot] == value:
            return
        vector[slot] = value
        tampered = SignedMessage(
            body=ESTIMATES[1].body.replace(est_vect=tuple(vector)),
            cert=ESTIMATES[1].cert,
            signature=ESTIMATES[1].signature,
        )
        assert caught(tampered)


class TestProposeTampering:
    @given(index=st.integers(min_value=0, max_value=31))
    def test_signature_bitflips(self, index):
        assert caught(bitflip(PROPOSAL, index))

    @given(
        slot=st.integers(min_value=0, max_value=3),
        value=st.text(min_size=1, max_size=6),
    )
    def test_selection_rewrites(self, slot, value):
        vector = list(PROPOSAL.body.est_vect)
        if vector[slot] == value:
            return
        vector[slot] = value
        tampered = SignedMessage(
            body=PROPOSAL.body.replace(est_vect=tuple(vector)),
            cert=PROPOSAL.cert,
            signature=PROPOSAL.signature,
        )
        assert caught(tampered)

    @given(keep=st.integers(min_value=0, max_value=2))
    def test_justification_thinning(self, keep):
        entries = PROPOSAL.full_cert().entries[:keep]
        tampered = SignedMessage(
            body=PROPOSAL.body,
            cert=Certificate(entries),
            signature=PROPOSAL.signature,
        )
        assert caught(tampered)


class TestDecideTampering:
    @given(index=st.integers(min_value=0, max_value=31))
    def test_signature_bitflips(self, index):
        assert caught(bitflip(DECIDE, index))

    @given(keep=st.integers(min_value=0, max_value=2))
    def test_ack_quorum_thinning(self, keep):
        tampered = SignedMessage(
            body=DECIDE.body,
            cert=Certificate((PROPOSAL, *ACKS[:keep])),
            signature=DECIDE.signature,
        )
        assert caught(tampered)

    @given(
        slot=st.integers(min_value=0, max_value=3),
        value=st.text(min_size=1, max_size=6),
    )
    def test_decided_vector_rewrites(self, slot, value):
        vector = list(DECIDE.body.est_vect)
        if vector[slot] == value:
            return
        vector[slot] = value
        tampered = SignedMessage(
            body=DECIDE.body.replace(est_vect=tuple(vector)),
            cert=DECIDE.cert,
            signature=DECIDE.signature,
        )
        assert caught(tampered)
