"""Tests: the adversary zoo across the campaign matrix (docs/ADVERSARIES.md).

Three layers, cheapest first:

* **Oracle catalogue** — hand-built observations against
  :func:`judge_zoo`: each family's injection/detection/attribution
  checks, the self-stabilization verdicts, and the net-fidelity
  relaxation (detection asserted only at the deterministic fidelities).
* **Presets** — every shipped zoo plan validates, covers its family,
  and the ``(F, d)`` sweep declares its expectations.
* **End-to-end** — one small plan per family through the real sim and
  loopback runners with verdict + counter assertions, plus the report's
  double-run byte-identity and v1/v2 schema tagging.
* **Shrinking** — the campaign shrinker reduces a seeded failing zoo
  plan to the clause that did it, deterministically.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULTS_SCHEMA,
    FAULTS_SCHEMA_V1,
    FaultPlan,
    FidelityObservation,
    live_correct,
    run_cross_fidelity,
    shrink_fault_plan,
    violation_kinds,
)
from repro.zoo import ZOO_FAMILIES, ZOO_PRESETS, families_in, judge_zoo

#: One small plan per family; each passes at sim AND loopback in a few
#: hundred milliseconds (the heavyweight preset matrix runs under
#: ``make zoo-smoke`` instead).
FAST_PLANS = {
    "message-adversary": FaultPlan(
        name="fast-suppress",
        seed=21,
        requests=8,
        duration=6.0,
        suppressions=((1, 0.5, 2.0, 2.5),),
    ),
    "state-corruption": FaultPlan(
        name="fast-corrupt",
        seed=22,
        requests=8,
        duration=6.0,
        corruptions=((2, 2.0, "store"),),
    ),
    "timing-attack": FaultPlan(
        name="fast-timing",
        seed=23,
        requests=10,
        duration=10.0,
        mutes=((1, 2.0),),
        timing=((3, 3.0, 7.0, 3.0),),
    ),
    "storage-flip": FaultPlan(
        name="fast-storage",
        seed=24,
        requests=10,
        duration=8.0,
        kills=((2, 1.5, 4.5),),
        storage_flips=((0, 2.5, "log"),),
    ),
}


def _observation(plan: FaultPlan, fidelity: str = "sim", **zoo) -> FidelityObservation:
    """A healthy observation for ``plan`` carrying the given zoo facts."""
    live = live_correct(plan)
    return FidelityObservation(
        fidelity=fidelity,
        completed=plan.requests,
        committed={pid: plan.requests for pid in live},
        digests={pid: "d" * 16 for pid in live},
        transfers={pid: 1 for pid in plan.rejoining_pids},
        zoo=dict(zoo),
    )


class TestZooOracles:
    def test_suppression_requires_injection(self):
        plan = FAST_PLANS["message-adversary"]
        live = live_correct(plan)
        assert judge_zoo(plan, _observation(plan, suppressed=5), live) == []
        missing = judge_zoo(plan, _observation(plan, suppressed=0), live)
        assert any(v.startswith("injection:") for v in missing)

    def test_omission_must_not_convict_the_innocent(self):
        plan = FAST_PLANS["message-adversary"]
        observation = _observation(plan, suppressed=5)
        observation.declared = ((0, 2, "behavior-violation"),)
        blamed = judge_zoo(plan, observation, live_correct(plan))
        assert any(v.startswith("attribution:") for v in blamed)

    def test_corruption_wants_detection_and_recovery(self):
        plan = FAST_PLANS["state-corruption"]
        live = live_correct(plan)
        good = _observation(
            plan, corruptions_injected=1, checkpoint_mismatches=1
        )
        assert judge_zoo(plan, good, live) == []
        assert good.zoo["reconvergence"] == "recovered"
        silent = _observation(plan, corruptions_injected=1)
        assert any(
            v.startswith("detection:")
            for v in judge_zoo(plan, silent, live)
        )

    def test_reconvergence_verdicts(self):
        plan = FAST_PLANS["state-corruption"]
        live = live_correct(plan)
        diverged = _observation(
            plan, corruptions_injected=1, checkpoint_mismatches=1
        )
        diverged.digests[0] = "x" * 16
        assert any(
            "diverged" in v for v in judge_zoo(plan, diverged, live)
        )
        assert diverged.zoo["reconvergence"] == "diverged"
        stuck = _observation(
            plan, corruptions_injected=1, checkpoint_mismatches=1
        )
        stuck.completed = plan.requests - 2
        assert any("stuck" in v for v in judge_zoo(plan, stuck, live))
        assert stuck.zoo["reconvergence"] == "stuck"

    def test_timing_needs_injection_and_engagement(self):
        plan = FAST_PLANS["timing-attack"]
        live = live_correct(plan)
        good = _observation(plan, timing_delays=4, wrongful_suspicions=2)
        assert judge_zoo(plan, good, live) == []
        idle = judge_zoo(plan, _observation(plan, timing_delays=0), live)
        assert any(v.startswith("injection:") for v in idle)
        asleep = judge_zoo(
            plan,
            _observation(plan, timing_delays=4, wrongful_suspicions=0),
            live,
        )
        assert any(v.startswith("engagement:") for v in asleep)

    def test_timing_blame_must_stay_inside_the_muteness_module(self):
        plan = FAST_PLANS["timing-attack"]
        observation = _observation(
            plan, timing_delays=4, wrongful_suspicions=2
        )
        # A declaration against correct pid 2 (the attacker, pid 3, and
        # the mute, pid 1, are fair game).
        observation.declared = ((0, 2, "muteness-timeout"),)
        escaped = judge_zoo(plan, observation, live_correct(plan))
        assert any(v.startswith("attribution:") for v in escaped)

    def test_storage_flip_wants_rejection(self):
        plan = FAST_PLANS["storage-flip"]
        live = live_correct(plan)
        good = _observation(
            plan, storage_flips_injected=1, storage_rejections=1
        )
        assert judge_zoo(plan, good, live) == []
        accepted = judge_zoo(
            plan,
            _observation(plan, storage_flips_injected=1, storage_rejections=0),
            live,
        )
        assert any(v.startswith("detection:") for v in accepted)

    def test_net_fidelity_relaxes_detection_not_injection(self):
        plan = FAST_PLANS["storage-flip"]
        live = live_correct(plan)
        at_net = _observation(
            plan,
            fidelity="net",
            storage_flips_injected=1,
            storage_rejections=0,
        )
        assert judge_zoo(plan, at_net, live) == []
        no_injection = _observation(
            plan, fidelity="net", storage_flips_injected=0
        )
        assert any(
            v.startswith("injection:")
            for v in judge_zoo(plan, no_injection, live)
        )


class TestZooPresets:
    def test_every_preset_plan_validates(self):
        for plans in ZOO_PRESETS.values():
            for plan in plans:
                plan.validate()
                assert plan.has_zoo

    def test_extended_covers_all_four_families(self):
        covered = set()
        for plan in ZOO_PRESETS["extended"]:
            covered |= set(families_in(plan))
        assert covered == set(ZOO_FAMILIES)

    def test_sweep_declares_the_compounding_expectations(self):
        cells = {plan.name: plan for plan in ZOO_PRESETS["sweep"]}
        assert set(cells) == {
            "zoo-fd-F0-d1", "zoo-fd-F0-d2", "zoo-fd-F1-d1", "zoo-fd-F1-d2"
        }
        assert cells["zoo-fd-F0-d1"].expect == "pass"
        for heavy in ("zoo-fd-F0-d2", "zoo-fd-F1-d1", "zoo-fd-F1-d2"):
            assert cells[heavy].expect == "vulnerable"

    def test_fast_plans_cover_all_four_families(self):
        for key, plan in FAST_PLANS.items():
            plan.validate()
            assert key in families_in(plan)


class TestZooEndToEnd:
    @pytest.mark.parametrize("family", sorted(FAST_PLANS))
    def test_family_passes_at_both_deterministic_fidelities(self, family):
        plan = FAST_PLANS[family]
        report = run_cross_fidelity((plan,), ("sim", "loopback"))
        assert report.ok, [
            result.outcomes for result in report.results
        ]
        for result in report.results:
            for fidelity, (verdict, violations, observation) in (
                result.outcomes.items()
            ):
                assert verdict == "pass", (fidelity, violations)
                assert observation.zoo  # the family actually ran

    def test_report_is_byte_identical_across_runs(self):
        plans = (
            FAST_PLANS["message-adversary"],
            FAST_PLANS["state-corruption"],
        )
        first = run_cross_fidelity(plans, ("sim", "loopback"))
        second = run_cross_fidelity(plans, ("sim", "loopback"))
        assert first.dumps() == second.dumps()
        assert first.to_record()["schema"] == FAULTS_SCHEMA

    def test_v1_only_report_keeps_the_v1_schema(self):
        plan = FaultPlan(name="v1-fast", seed=3, requests=6, duration=4.0)
        report = run_cross_fidelity((plan,), ("sim",))
        assert report.to_record()["schema"] == FAULTS_SCHEMA_V1


class TestShrink:
    #: Fails at sim with {progress} kinds; only the suppression clause
    #: matters — the mute and the duplication noise are bystanders.
    SEEDED_FAILING = FaultPlan(
        name="shrink-seeded",
        seed=5,
        requests=6,
        duration=4.0,
        mutes=((1, 3.5),),
        duplication=0.05,
        suppressions=((2, 0.5, 0.5, 2.5),),
    )

    def test_shrinks_to_the_guilty_clause(self):
        result = shrink_fault_plan(self.SEEDED_FAILING)
        assert result.kinds == frozenset({"progress"})
        assert result.plan.suppressions == self.SEEDED_FAILING.suppressions
        assert result.plan.mutes == ()
        assert result.plan.duplication == 0.0
        assert {axis for axis, _clause in result.removed} == {
            "mutes", "duplication"
        }

    def test_shrink_is_deterministic(self):
        a = shrink_fault_plan(self.SEEDED_FAILING)
        b = shrink_fault_plan(self.SEEDED_FAILING)
        assert a.plan.plan_id == b.plan.plan_id
        assert a.removed == b.removed
        assert a.runs == b.runs

    def test_passing_plans_refuse_to_shrink(self):
        healthy = FaultPlan(name="healthy", seed=5, requests=6, duration=4.0)
        with pytest.raises(ConfigurationError):
            shrink_fault_plan(healthy)

    def test_budget_bounds_the_search(self):
        calls = 0

        def runner(plan: FaultPlan) -> FidelityObservation:
            nonlocal calls
            calls += 1
            return FidelityObservation(fidelity="sim")  # fails everything

        result = shrink_fault_plan(
            self.SEEDED_FAILING, budget=3, runner=runner
        )
        assert result.runs <= 3
        assert calls <= 3

    def test_violation_kinds_strip_details(self):
        assert violation_kinds(
            ["progress: 1/6", "progress: replica 0", "detection: x"]
        ) == frozenset({"progress", "detection"})
