"""Unit and property tests: the reliable FIFO network."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.sim.network import (
    ExponentialDelay,
    FixedDelay,
    Network,
    TargetedSlowdown,
    UniformDelay,
)
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


def make_network(delay_model=None, n=3, seed=0):
    scheduler = Scheduler(seed=seed)
    trace = Trace()
    network = Network(scheduler, trace, delay_model=delay_model)
    inboxes: dict[int, list] = {pid: [] for pid in range(n)}
    for pid in range(n):
        network.register(pid, lambda src, msg, pid=pid: inboxes[pid].append((src, msg)))
    return scheduler, network, inboxes


class TestDelayModels:
    def test_fixed_delay(self):
        rng = SeededRng(0)
        assert FixedDelay(2.5).sample(rng, 0, 1) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(NetworkError):
            FixedDelay(-1.0)

    def test_uniform_bounds(self):
        rng = SeededRng(0)
        model = UniformDelay(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng, 0, 1) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(NetworkError):
            UniformDelay(3.0, 2.0)

    def test_exponential_cap(self):
        rng = SeededRng(0)
        model = ExponentialDelay(mean=100.0, base=0.1, cap=5.0)
        for _ in range(200):
            assert 0.1 <= model.sample(rng, 0, 1) <= 5.0

    def test_exponential_rejects_bad_params(self):
        with pytest.raises(NetworkError):
            ExponentialDelay(mean=0.0)

    def test_targeted_slowdown_dilates_only_targets(self):
        rng = SeededRng(0)
        model = TargetedSlowdown(FixedDelay(1.0), slow={2}, factor=10.0)
        assert model.sample(rng, 0, 1) == 1.0
        assert model.sample(rng, 0, 2) == 10.0
        assert model.sample(rng, 2, 0) == 10.0

    def test_targeted_slowdown_rejects_factor_below_one(self):
        with pytest.raises(NetworkError):
            TargetedSlowdown(FixedDelay(1.0), slow={0}, factor=0.5)


class TestNetwork:
    def test_delivers_messages(self):
        scheduler, network, inboxes = make_network()
        network.send(0, 1, "hello")
        scheduler.run()
        assert inboxes[1] == [(0, "hello")]

    def test_self_channel_works(self):
        scheduler, network, inboxes = make_network()
        network.send(0, 0, "loopback")
        scheduler.run()
        assert inboxes[0] == [(0, "loopback")]

    def test_reliability_no_loss_no_duplication(self):
        scheduler, network, inboxes = make_network()
        for i in range(50):
            network.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(50))
        assert network.messages_sent == network.messages_delivered == 50

    def test_unknown_destination_rejected(self):
        scheduler, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.send(0, 99, "x")

    def test_unknown_source_rejected(self):
        scheduler, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.send(99, 0, "x")

    def test_double_registration_rejected(self):
        scheduler, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.register(0, lambda src, msg: None)

    def test_trace_records_send_and_deliver(self):
        scheduler, network, _ = make_network()
        network.send(0, 1, "traced")
        scheduler.run()
        trace = network._trace
        assert trace.count("send") == 1
        assert trace.count("deliver") == 1
        assert trace.first("deliver").detail["payload"] == "traced"

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=2, max_value=40),
    )
    def test_fifo_property_per_channel(self, seed, count):
        """FIFO holds for every channel even under wide random delays."""
        scheduler, network, inboxes = make_network(
            delay_model=UniformDelay(0.0, 10.0), seed=seed
        )
        for i in range(count):
            network.send(0, 1, i)
            network.send(2, 1, 1000 + i)
        scheduler.run()
        from_p0 = [msg for src, msg in inboxes[1] if src == 0]
        from_p2 = [msg for src, msg in inboxes[1] if src == 2]
        assert from_p0 == list(range(count))
        assert from_p2 == [1000 + i for i in range(count)]

    def test_interleaving_across_channels_may_differ_from_send_order(self):
        # Not a FIFO violation: ordering is per-channel only. This test
        # documents that cross-channel reordering does happen.
        observed_orders = set()
        for seed in range(30):
            scheduler, network, inboxes = make_network(
                delay_model=UniformDelay(0.0, 5.0), seed=seed
            )
            network.send(0, 1, "a")
            network.send(2, 1, "b")
            scheduler.run()
            observed_orders.add(tuple(msg for _, msg in inboxes[1]))
        assert ("a", "b") in observed_orders
        assert ("b", "a") in observed_orders
