"""Unit and property tests: the reliable FIFO network and its link faults."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, NetworkError
from repro.sim.network import (
    ExponentialDelay,
    FixedDelay,
    LinkModel,
    Network,
    Partition,
    TargetedSlowdown,
    UniformDelay,
)
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace


def make_network(delay_model=None, n=3, seed=0, link_model=None, metrics=None):
    scheduler = Scheduler(seed=seed)
    trace = Trace()
    network = Network(
        scheduler, trace, delay_model=delay_model, link_model=link_model,
        metrics=metrics,
    )
    inboxes: dict[int, list] = {pid: [] for pid in range(n)}
    for pid in range(n):
        network.register(pid, lambda src, msg, pid=pid: inboxes[pid].append((src, msg)))
    return scheduler, network, inboxes


class TestDelayModels:
    def test_fixed_delay(self):
        rng = SeededRng(0)
        assert FixedDelay(2.5).sample(rng, 0, 1) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(NetworkError):
            FixedDelay(-1.0)

    def test_uniform_bounds(self):
        rng = SeededRng(0)
        model = UniformDelay(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= model.sample(rng, 0, 1) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(NetworkError):
            UniformDelay(3.0, 2.0)

    def test_exponential_cap(self):
        rng = SeededRng(0)
        model = ExponentialDelay(mean=100.0, base=0.1, cap=5.0)
        for _ in range(200):
            assert 0.1 <= model.sample(rng, 0, 1) <= 5.0

    def test_exponential_rejects_bad_params(self):
        with pytest.raises(NetworkError):
            ExponentialDelay(mean=0.0)

    def test_targeted_slowdown_dilates_only_targets(self):
        rng = SeededRng(0)
        model = TargetedSlowdown(FixedDelay(1.0), slow={2}, factor=10.0)
        assert model.sample(rng, 0, 1) == 1.0
        assert model.sample(rng, 0, 2) == 10.0
        assert model.sample(rng, 2, 0) == 10.0

    def test_targeted_slowdown_rejects_factor_below_one(self):
        with pytest.raises(NetworkError):
            TargetedSlowdown(FixedDelay(1.0), slow={0}, factor=0.5)


class TestNetwork:
    def test_delivers_messages(self):
        scheduler, network, inboxes = make_network()
        network.send(0, 1, "hello")
        scheduler.run()
        assert inboxes[1] == [(0, "hello")]

    def test_self_channel_works(self):
        scheduler, network, inboxes = make_network()
        network.send(0, 0, "loopback")
        scheduler.run()
        assert inboxes[0] == [(0, "loopback")]

    def test_reliability_no_loss_no_duplication(self):
        scheduler, network, inboxes = make_network()
        for i in range(50):
            network.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(50))
        assert network.messages_sent == network.messages_delivered == 50

    def test_unknown_destination_rejected(self):
        scheduler, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.send(0, 99, "x")

    def test_unknown_source_rejected(self):
        scheduler, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.send(99, 0, "x")

    def test_double_registration_rejected(self):
        scheduler, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.register(0, lambda src, msg: None)

    def test_trace_records_send_and_deliver(self):
        scheduler, network, _ = make_network()
        network.send(0, 1, "traced")
        scheduler.run()
        trace = network._trace
        assert trace.count("send") == 1
        assert trace.count("deliver") == 1
        assert trace.first("deliver").detail["payload"] == "traced"

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=2, max_value=40),
    )
    def test_fifo_property_per_channel(self, seed, count):
        """FIFO holds for every channel even under wide random delays."""
        scheduler, network, inboxes = make_network(
            delay_model=UniformDelay(0.0, 10.0), seed=seed
        )
        for i in range(count):
            network.send(0, 1, i)
            network.send(2, 1, 1000 + i)
        scheduler.run()
        from_p0 = [msg for src, msg in inboxes[1] if src == 0]
        from_p2 = [msg for src, msg in inboxes[1] if src == 2]
        assert from_p0 == list(range(count))
        assert from_p2 == [1000 + i for i in range(count)]

    def test_messages_dropped_and_duplicated_default_zero(self):
        scheduler, network, _ = make_network()
        network.send(0, 1, "x")
        scheduler.run()
        assert network.messages_dropped == 0
        assert network.messages_duplicated == 0
        assert network.messages_delivered == 1

    def test_interleaving_across_channels_may_differ_from_send_order(self):
        # Not a FIFO violation: ordering is per-channel only. This test
        # documents that cross-channel reordering does happen.
        observed_orders = set()
        for seed in range(30):
            scheduler, network, inboxes = make_network(
                delay_model=UniformDelay(0.0, 5.0), seed=seed
            )
            network.send(0, 1, "a")
            network.send(2, 1, "b")
            scheduler.run()
            observed_orders.add(tuple(msg for _, msg in inboxes[1]))
        assert ("a", "b") in observed_orders
        assert ("b", "a") in observed_orders


class TestLinkModel:
    def test_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            LinkModel(loss=1.0)
        with pytest.raises(ConfigurationError):
            LinkModel(duplication=-0.1)
        with pytest.raises(ConfigurationError):
            LinkModel(reorder=2.0)
        with pytest.raises(ConfigurationError):
            LinkModel(reorder_spread=0.0)

    def test_faultless_detection(self):
        assert LinkModel().faultless
        assert not LinkModel(loss=0.1).faultless
        assert not LinkModel(
            partitions=(Partition(1.0, 2.0, ((0,), (1,))),)
        ).faultless

    def test_partition_window_validated(self):
        with pytest.raises(ConfigurationError):
            Partition(start=5.0, heal=5.0, groups=((0,), (1,)))
        with pytest.raises(ConfigurationError):
            Partition(start=-1.0, heal=2.0, groups=((0,), (1,)))
        with pytest.raises(ConfigurationError):
            Partition(start=0.0, heal=1.0, groups=((0, 1),))
        with pytest.raises(ConfigurationError):
            Partition(start=0.0, heal=1.0, groups=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            Partition(start=0.0, heal=1.0, groups=((0,), ()))

    def test_partition_severs_only_cross_group_in_window(self):
        partition = Partition(start=10.0, heal=20.0, groups=((0, 1), (2, 3)))
        assert partition.severs(15.0, 0, 2)
        assert partition.severs(10.0, 3, 1)
        assert not partition.severs(15.0, 0, 1)  # same side
        assert not partition.severs(9.9, 0, 2)  # before the cut
        assert not partition.severs(20.0, 0, 2)  # healed
        assert not partition.severs(15.0, 0, 4)  # pid outside every group

    def test_loss_drops_messages_and_counts_them(self):
        model = LinkModel(loss=0.5)
        scheduler, network, inboxes = make_network(link_model=model, seed=3)
        for i in range(100):
            network.send(0, 1, i)
        scheduler.run()
        delivered = len(inboxes[1])
        assert delivered < 100
        assert network.messages_dropped == 100 - delivered
        assert network.messages_delivered == delivered
        assert network._trace.count("link-drop") == network.messages_dropped
        assert network._trace.first("link-drop").detail["reason"] == "loss"

    def test_duplication_delivers_extra_copies(self):
        model = LinkModel(duplication=0.5)
        scheduler, network, inboxes = make_network(link_model=model, seed=3)
        for i in range(60):
            network.send(0, 1, i)
        scheduler.run()
        assert network.messages_duplicated > 0
        assert len(inboxes[1]) == 60 + network.messages_duplicated
        # First-copy accounting stays exact despite the duplicates.
        assert network.messages_delivered == 60

    def test_partition_drops_cross_group_then_heals(self):
        model = LinkModel(
            partitions=(Partition(start=0.0, heal=50.0, groups=((0,), (1,))),)
        )
        scheduler, network, inboxes = make_network(
            delay_model=FixedDelay(1.0), link_model=model
        )
        network.send(0, 1, "cut")  # t=0: severed
        network.send(0, 2, "side")  # 2 is in no group: unaffected
        scheduler.schedule_at(60.0, "probe", lambda: network.send(0, 1, "healed"))
        scheduler.run()
        assert inboxes[1] == [(0, "healed")]
        assert inboxes[2] == [(0, "side")]
        assert network._trace.first("link-drop").detail["reason"] == "partition"
        assert network._trace.count("partition-start") == 1
        assert network._trace.count("partition-heal") == 1

    def test_self_channel_never_faulted(self):
        model = LinkModel(loss=0.99, duplication=0.5)
        scheduler, network, inboxes = make_network(link_model=model)
        for i in range(20):
            network.send(1, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(20))
        assert network.messages_dropped == 0

    def test_reorder_can_break_fifo_but_loses_nothing(self):
        model = LinkModel(reorder=0.3, reorder_spread=20.0)
        broke_fifo = False
        for seed in range(10):
            scheduler, network, inboxes = make_network(
                delay_model=FixedDelay(1.0), link_model=model, seed=seed
            )
            for i in range(40):
                network.send(0, 1, i)
            scheduler.run()
            got = [msg for _, msg in inboxes[1]]
            assert sorted(got) == list(range(40))  # nothing lost
            if got != list(range(40)):
                broke_fifo = True
        assert broke_fifo

    def test_link_faults_are_deterministic_per_seed(self):
        def run(seed):
            model = LinkModel(loss=0.3, duplication=0.2, reorder=0.1)
            scheduler, network, inboxes = make_network(link_model=model, seed=seed)
            for i in range(80):
                network.send(0, 1, i)
            scheduler.run()
            return (
                tuple(inboxes[1]),
                network.messages_dropped,
                network.messages_duplicated,
            )

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_per_link_metrics_recorded(self):
        from repro.observability.registry import MODULE_NETWORK, MetricsRegistry

        metrics = MetricsRegistry()
        model = LinkModel(loss=0.5, duplication=0.4)
        scheduler, network, _ = make_network(
            link_model=model, seed=1, metrics=metrics
        )
        for i in range(80):
            network.send(0, 1, i)
        scheduler.run()
        assert metrics.counter_total(MODULE_NETWORK, "drop[0->1]") == \
            network.messages_dropped
        assert metrics.counter_total(MODULE_NETWORK, "dup[0->1]") == \
            network.messages_duplicated
        assert network.messages_dropped > 0 and network.messages_duplicated > 0
