"""Smoke tests: every example script runs clean and says what it promised."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["decisions of the correct processes", "faulty = [3]"],
    "crash_vs_byzantine.py": [
        "Act 1", "Act 2", "Act 3",
        "replicas activated a configuration NOBODY proposed",
        "the liar is in every faulty set",
    ],
    "attack_gallery.py": ["Every attack absorbed"],
    "modular_transformation.py": [
        "hand-assembled system decided",
        "certification ablated",
        "all properties hold: False",
    ],
    "replicated_kv_store.py": [
        "identical on every correct replica",
        "installed a certified snapshot",
        "recovered by state transfer and rejoined",
    ],
    "second_case_study.py": [
        "[hurfin-raynal]",
        "[chandra-toueg]",
        "corrupted",
    ],
    "fifo_anomaly.py": [
        "agreement : False",
        "agreement : True",
        "Identical schedule, opposite outcomes",
    ],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs_and_reports(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in CASES[script]:
        assert marker in result.stdout, (script, marker)


def test_every_example_has_a_smoke_case():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), "update CASES when adding examples"
