"""Tests: mid-frame connection resets against the real-socket transport.

The chaos hook :meth:`FaultyPeerTransport.inject_reset` aborts an
established outbound peer connection, optionally flushing garbage bytes
first — the userspace analogue of an RST landing mid-frame. The
transport contract under that fault (docs/FAULTS.md): the acceptor's
:class:`FrameAssembler` rejects the truncated garbage as a
``WireError`` (counted, never raised into the event loop), the dialer
re-establishes the link under capped exponential backoff, and traffic
flows again — no partial frame survives into the reconnected stream.
"""

from __future__ import annotations

import asyncio

from repro.net.cluster import make_genesis
from repro.net.faulty import FaultyPeerTransport
from repro.net.transport import PeerTransport
from repro.observability.registry import MODULE_NET, MetricsRegistry


class Endpoint:
    """One transport plus an inbox and a per-test metrics registry."""

    def __init__(self, genesis, pid, transport_cls=PeerTransport, **kwargs):
        self.pid = pid
        self.inbox: list[tuple[int, object]] = []
        self.arrived = asyncio.Event()
        self.registry = MetricsRegistry()
        self.transport = transport_cls(
            genesis,
            pid,
            self._receive,
            metrics=self.registry.scope(MODULE_NET, pid),
            **kwargs,
        )

    def _receive(self, src, message):
        self.inbox.append((src, message))
        self.arrived.set()

    async def expect(self, count, timeout=8.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.inbox) < count:
            remaining = deadline - asyncio.get_running_loop().time()
            self.arrived.clear()
            await asyncio.wait_for(self.arrived.wait(), max(0.05, remaining))
        return self.inbox

    def counter(self, name):
        return self.registry.counter_total(MODULE_NET, name)


def test_reset_mid_frame_is_counted_and_reconnected():
    async def scenario():
        genesis = make_genesis(4, seed=31, name="reconnect")
        # The full mesh is up, so the dialer's reconnect counter can only
        # move when an *established* connection drops — the reset below.
        nodes = [
            Endpoint(genesis, 0, transport_cls=FaultyPeerTransport),
            Endpoint(genesis, 1),
            Endpoint(genesis, 2),
            Endpoint(genesis, 3),
        ]
        dialer, acceptor = nodes[0], nodes[1]
        for node in nodes:
            await node.transport.start()
        try:
            # Establish the 0 -> 1 connection and prove delivery.
            dialer.transport.send(1, ("before", 0))
            await acceptor.expect(1)
            assert acceptor.inbox == [(0, ("before", 0))]

            # Abort it mid-frame: 64 bytes of bad-magic garbage reach the
            # acceptor's assembler just before the transport dies.
            assert dialer.transport.inject_reset(1, partial=b"\xff" * 64)

            # The acceptor rejects the partial frame as a WireError —
            # counted, connection dropped, reader task intact.
            deadline = asyncio.get_running_loop().time() + 8.0
            while acceptor.counter("frames_rejected") < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.05)

            # The dialer only notices on its next write; keep sending
            # fresh messages until one crosses the re-established link.
            # (A frame in flight at the instant of the reset is lost —
            # the reliable-channel layer above retransmits state, the
            # transport itself does not.)
            sent = 0
            deadline = asyncio.get_running_loop().time() + 10.0
            while len(acceptor.inbox) < 2:
                dialer.transport.send(1, ("after", sent))
                sent += 1
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.2)

            # Reconnected: fresh traffic arrived, well-formed, and no
            # fragment of the garbage leaked into the decoded stream.
            assert dialer.counter("peer_reconnects") >= 1
            assert dialer.counter("peer_connects") >= 2
            for src, message in acceptor.inbox[1:]:
                assert src == 0
                assert message[0] == "after"

            # The acceptor is fully alive: the reverse direction works.
            acceptor.transport.send(0, ("pong", 1))
            await dialer.expect(1)
            assert dialer.inbox == [(1, ("pong", 1))]
        finally:
            for node in nodes:
                await node.transport.stop()

    asyncio.run(scenario())


def test_reset_without_an_established_connection_reports_false():
    async def scenario():
        genesis = make_genesis(4, seed=32, name="no-conn")
        lone = Endpoint(genesis, 0, transport_cls=FaultyPeerTransport)
        await lone.transport.start()
        try:
            # Nothing was ever sent, so no outbound connection exists.
            assert lone.transport.inject_reset(1) is False
        finally:
            await lone.transport.stop()

    asyncio.run(scenario())
