"""Tests: the fault-injection campaign harness (``repro.campaign``).

Pins the acceptance properties of the campaign subsystem: deterministic
enumeration, byte-identical artifacts for a fixed master seed, taxonomy
coverage, replayable scenario ids, the shrinking pass, and the CLI's
exit-2 behaviour on invalid configs.
"""

from __future__ import annotations

import io

import pytest

from repro.byzantine.faults import FailureClass
from repro.campaign import (
    CampaignArtifact,
    Scenario,
    enumerate_scenarios,
    read_campaign_jsonl,
    run_campaign,
    run_scenario,
    shrink_scenario,
    write_campaign_jsonl,
)
from repro.campaign.artifact import (
    CampaignArtifactError,
    campaign_to_lines,
    parse_campaign_lines,
)
from repro.campaign.matrix import campaign_spec
from repro.campaign.oracles import (
    VERDICT_EXPECTED_VULNERABILITY,
    VERDICT_FAIL,
    injected_failure_classes,
    violation_kinds,
)
from repro.campaign.runner import record_matches
from repro.cli import main
from repro.errors import ConfigurationError

#: A scenario known to violate properties deterministically: the
#: unprotected crash-model protocol facing a value-corrupting Byzantine
#: process (the paper's Figure-2 victim experiment), plus a crash and an
#: exotic delay model so the shrinker has something to remove.
SHRINKABLE = Scenario(
    protocol="hurfin-raynal",
    n=5,
    seed=1,
    attacks=((0, "value-corruption"),),
    crashes=((4, 2.0),),
    delay_model="exponential",
)


@pytest.fixture(scope="module")
def smoke_scenarios():
    return enumerate_scenarios(campaign_spec("smoke"), master_seed=0)


@pytest.fixture(scope="module")
def smoke_result(smoke_scenarios):
    return run_campaign(smoke_scenarios)


class TestEnumeration:
    def test_smoke_preset_size(self, smoke_scenarios):
        assert len(smoke_scenarios) >= 50

    def test_full_preset_meets_acceptance_floor(self):
        full = enumerate_scenarios(campaign_spec("full"), master_seed=0)
        assert len(full) >= 200

    def test_ids_are_unique_and_stable(self, smoke_scenarios):
        ids = [s.scenario_id for s in smoke_scenarios]
        assert len(ids) == len(set(ids))
        again = enumerate_scenarios(campaign_spec("smoke"), master_seed=0)
        assert [s.scenario_id for s in again] == ids

    def test_master_seed_changes_worlds_not_structure(self, smoke_scenarios):
        other = enumerate_scenarios(campaign_spec("smoke"), master_seed=9)
        assert len(other) == len(smoke_scenarios)
        assert [s.scenario_id for s in other] != [
            s.scenario_id for s in smoke_scenarios
        ]

    def test_every_failure_class_is_injected(self, smoke_scenarios):
        covered = set()
        for scenario in smoke_scenarios:
            covered.update(injected_failure_classes(scenario))
        assert covered == {fc.value for fc in FailureClass}

    def test_every_protocol_is_swept(self, smoke_scenarios):
        protocols = {s.protocol for s in smoke_scenarios}
        assert protocols == {
            "hurfin-raynal",
            "chandra-toueg",
            "transformed",
            "transformed-ct",
        }

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            campaign_spec("nope")


class TestScenarioRoundTrip:
    def test_config_round_trips_exactly(self, smoke_scenarios):
        for scenario in smoke_scenarios:
            assert Scenario.from_config(scenario.to_config()) == scenario

    def test_malformed_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_config({"protocol": "transformed"})  # n missing
        with pytest.raises(ConfigurationError):
            Scenario.from_config(
                {"protocol": "transformed", "n": 4, "seed": "not-a-seed"}
            )

    @pytest.mark.parametrize(
        "overrides",
        [
            {"protocol": "imaginary"},
            {"n": 0},
            {"attacks": ((7, "mute"),)},
            {"attacks": ((0, "no-such-attack"),)},
            {"attacks": ((0, "mute"),), "crashes": ((0, 1.0),)},
            {"crashes": ((1, -3.0),)},
            {"delay_model": "warp"},
            {"delay_params": (("nope", 1.0),)},
            {"variant": "mystery"},
            {"collusion": "amplified-equivocation"},  # needs F >= 2
            {"attacks": ((0, "mute"), (1, "mute"))},  # exceeds F=1
        ],
    )
    def test_validate_rejects_inconsistencies(self, overrides):
        base = dict(protocol="transformed", n=4, seed=0)
        base.update(overrides)
        with pytest.raises(ConfigurationError):
            Scenario(**base).validate()

    def test_crash_model_rejects_ct_attacks(self):
        scenario = Scenario(
            protocol="chandra-toueg", n=4, attacks=((0, "mute"),)
        )
        with pytest.raises(ConfigurationError):
            scenario.validate()


class TestDeterminism:
    def test_replay_reproduces_a_recorded_verdict(self, smoke_result):
        record = smoke_result.records[7]
        fresh = run_scenario(record.scenario)
        assert record_matches(record.to_record(), fresh)

    def test_full_campaign_is_byte_identical_across_runs(self):
        # The acceptance criterion: >= 200 scenarios, fixed master seed,
        # two complete runs, byte-for-byte identical JSONL.
        scenarios = enumerate_scenarios(campaign_spec("full"), master_seed=42)
        assert len(scenarios) >= 200

        def export() -> str:
            buffer = io.StringIO()
            write_campaign_jsonl(
                buffer, run_campaign(scenarios), meta={"master_seed": 42}
            )
            return buffer.getvalue()

        first, second = export(), export()
        assert first == second
        assert first.encode("utf-8") == second.encode("utf-8")


class TestOracles:
    def test_smoke_campaign_has_no_unexpected_failures(self, smoke_result):
        assert smoke_result.failures == []
        assert smoke_result.verdict_counts.get(VERDICT_FAIL, 0) == 0

    def test_crash_model_victims_are_expected_vulnerabilities(self, smoke_result):
        vulnerable = [
            r
            for r in smoke_result.records
            if r.verdict == VERDICT_EXPECTED_VULNERABILITY
        ]
        assert vulnerable, "the Figure-2 victim runs must be represented"
        for record in vulnerable:
            assert not record.scenario.is_transformed
            assert record.scenario.attacks

    def test_transformed_attacks_attributed_to_designated_modules(
        self, smoke_result
    ):
        # Every detected attacker is attributed; zero attribution
        # violations is exactly verdict != fail, checked above — here we
        # additionally require the artifact to carry the attribution map.
        attributed = 0
        for record in smoke_result.records:
            if not record.scenario.is_transformed:
                continue
            payload = record.to_record()
            for pid in record.scenario.faulty_pids:
                modules = payload["attribution"].get(str(pid))
                if modules:
                    attributed += 1
                    assert set(modules) <= {
                        "signature",
                        "muteness-detector",
                        "non-muteness-detector",
                        "certification",
                    }
        assert attributed > 0

    def test_violation_kinds_views_both_violation_families(self):
        record = {
            "violations": ["attribution: wrong module"],
            "properties": {"violations": ["validity: bad vector"]},
        }
        assert violation_kinds(record) == {"attribution", "validity"}


class TestArtifact:
    def test_round_trip(self, smoke_result, tmp_path):
        path = tmp_path / "campaign.jsonl"
        write_campaign_jsonl(path, smoke_result, meta={"preset": "smoke"})
        artifact = read_campaign_jsonl(path)
        assert artifact.schema == "repro.campaign/v1"
        assert artifact.meta == {"preset": "smoke"}
        assert artifact.ids() == [r.scenario_id for r in smoke_result.records]
        assert artifact.summary == smoke_result.summary()

    def test_scenario_rebuilds_from_recorded_config(self, smoke_result):
        artifact = parse_campaign_lines(campaign_to_lines(smoke_result))
        some_id = smoke_result.records[3].scenario_id
        assert artifact.scenario_for(some_id) == smoke_result.records[3].scenario

    def test_corrupt_config_detected_by_id_hash(self, smoke_result):
        artifact = parse_campaign_lines(campaign_to_lines(smoke_result))
        record = artifact.scenarios[0]
        record["config"]["seed"] = record["config"]["seed"] + 1
        with pytest.raises(CampaignArtifactError, match="corrupt"):
            artifact.scenario_for(record["id"])

    def test_unknown_id_rejected(self):
        with pytest.raises(CampaignArtifactError, match="not present"):
            CampaignArtifact().find("sdeadbeef0000")

    def test_headerless_lines_rejected(self):
        with pytest.raises(CampaignArtifactError, match="header"):
            parse_campaign_lines(['{"kind": "summary", "scenarios": 0}'])

    def test_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(CampaignArtifactError, match="cannot read"):
            read_campaign_jsonl(tmp_path / "absent.jsonl")


@pytest.fixture(scope="module")
def lossy_scenarios():
    return enumerate_scenarios(campaign_spec("lossy"), master_seed=0)


@pytest.fixture(scope="module")
def partition_scenarios():
    return enumerate_scenarios(campaign_spec("partition"), master_seed=0)


class TestLinkFaultPresets:
    def test_lossy_preset_shape(self, lossy_scenarios):
        assert len(lossy_scenarios) == 12
        for scenario in lossy_scenarios:
            assert scenario.protocol == "transformed"
            assert scenario.transport == "reliable"
            assert scenario.muteness == "adaptive"
            assert scenario.has_link_faults
            assert scenario.loss > 0

    def test_partition_preset_shape(self, partition_scenarios):
        assert len(partition_scenarios) == 6
        for scenario in partition_scenarios:
            assert scenario.partitions == ((40.0, 120.0, "0,1|2,3"),)
            assert scenario.transport == "reliable"

    def test_presets_cover_combined_link_and_byzantine_faults(
        self, lossy_scenarios, partition_scenarios
    ):
        # The attribution oracle must be exercised with link faults AND a
        # Byzantine attacker at the same time, in both families.
        assert any(s.attacks for s in lossy_scenarios)
        assert any(s.attacks for s in partition_scenarios)

    @staticmethod
    def _export(result) -> str:
        buffer = io.StringIO()
        write_campaign_jsonl(buffer, result, meta={"master_seed": 0})
        return buffer.getvalue()

    def test_lossy_campaign_passes_and_is_byte_identical(self, lossy_scenarios):
        first, second = run_campaign(lossy_scenarios), run_campaign(lossy_scenarios)
        assert first.failures == []
        assert first.verdict_counts == {"pass": 12}
        assert self._export(first) == self._export(second)

    def test_partition_campaign_passes_and_is_byte_identical(
        self, partition_scenarios
    ):
        first = run_campaign(partition_scenarios)
        second = run_campaign(partition_scenarios)
        assert first.failures == []
        assert first.verdict_counts == {"pass": 6}
        assert self._export(first) == self._export(second)

    def test_link_fault_records_carry_wire_accounting(self, lossy_scenarios):
        record = run_scenario(lossy_scenarios[0])
        assert record.verdict == "pass"
        assert record.messages_dropped > 0
        assert record.retransmissions > 0
        payload = record.to_record()
        assert payload["run"]["messages_dropped"] == record.messages_dropped
        assert payload["run"]["retransmissions"] == record.retransmissions

    def test_link_fault_config_round_trips(self, lossy_scenarios, partition_scenarios):
        for scenario in list(lossy_scenarios) + list(partition_scenarios):
            assert Scenario.from_config(scenario.to_config()) == scenario

    @pytest.mark.parametrize(
        "overrides",
        [
            {"loss": 1.0},
            {"dup": -0.1},
            {"reorder": 1.5},
            {"partitions": ((10.0, 10.0, "0,1|2,3"),)},
            {"partitions": ((-1.0, 5.0, "0,1|2,3"),)},
            {"partitions": ((0.0, 5.0, "0,1,2,3"),)},  # single side
            {"partitions": ((0.0, 5.0, "0,1|1,2"),)},  # repeated pid
            {"partitions": ((0.0, 5.0, "0,1|2,9"),)},  # pid out of range
            {"partitions": ((0.0, 5.0, "0,1|x"),)},  # malformed groups
            {"transport": "carrier-pigeon"},
            {"muteness": "psychic"},
        ],
    )
    def test_validate_rejects_bad_link_faults(self, overrides):
        base = dict(protocol="transformed", n=4, seed=0)
        base.update(overrides)
        with pytest.raises(ConfigurationError):
            Scenario(**base).validate()

    def test_muteness_detector_needs_transformed_protocol(self):
        scenario = Scenario(protocol="chandra-toueg", n=4, muteness="adaptive")
        with pytest.raises(ConfigurationError):
            scenario.validate()

    def test_without_link_faults_restores_pristine_wire(self, lossy_scenarios):
        scenario = lossy_scenarios[3]
        healed = scenario.without_link_faults()
        assert not healed.has_link_faults
        assert healed.transport == "none"
        assert healed.build_link_model() is None
        assert healed.seed == scenario.seed  # only the wire changed

    def test_shrink_heals_irrelevant_link_faults(self):
        # The Figure-2 victim fails with or without a faulty wire, so the
        # shrinker must strip the link faults from the counterexample.
        from dataclasses import replace

        noisy = replace(SHRINKABLE, loss=0.1, dup=0.05, transport="reliable")
        result = shrink_scenario(noisy)
        assert not result.minimal.has_link_faults
        assert any("heal all link faults" in step for step in result.steps)


class TestShrink:
    def test_shrinks_to_minimal_counterexample(self):
        result = shrink_scenario(SHRINKABLE)
        assert result.shrunk
        minimal = result.minimal
        # The crash, the big system, the exotic delay and the seed are
        # all noise; the single attacker is the counterexample.
        assert minimal.attacks == ((0, "value-corruption"),)
        assert minimal.crashes == ()
        assert minimal.n < SHRINKABLE.n
        assert minimal.delay_model == "fixed"
        assert minimal.seed == 0
        # Same failure signature before and after.
        base = run_scenario(SHRINKABLE)
        assert violation_kinds(result.record.to_record()) == violation_kinds(
            base.to_record()
        )

    def test_shrink_is_deterministic(self):
        first = shrink_scenario(SHRINKABLE)
        second = shrink_scenario(SHRINKABLE)
        assert first.minimal == second.minimal
        assert first.steps == second.steps
        assert first.candidates_tried == second.candidates_tried

    def test_passing_scenario_refuses_to_shrink(self):
        passing = Scenario(protocol="transformed", n=4, seed=0)
        with pytest.raises(ConfigurationError, match="does not fail"):
            shrink_scenario(passing)


class TestCli:
    def test_campaign_list_exit_zero(self, capsys):
        assert main(["campaign", "list", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "55 scenarios" in out

    def test_campaign_run_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "c.jsonl"
        code = main(
            [
                "campaign",
                "run",
                "--preset",
                "smoke",
                "--max-scenarios",
                "6",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        artifact = read_campaign_jsonl(out_path)
        assert len(artifact.scenarios) == 6
        capsys.readouterr()

    def test_campaign_replay_matches_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "c.jsonl"
        main(
            [
                "campaign",
                "run",
                "--preset",
                "smoke",
                "--max-scenarios",
                "3",
                "--out",
                str(out_path),
            ]
        )
        capsys.readouterr()
        target = read_campaign_jsonl(out_path).ids()[0]
        code = main(["campaign", "replay", target, "--artifact", str(out_path)])
        assert code == 0
        assert "matches the artifact" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "run", "--preset", "nope"],
            ["campaign", "run", "--preset", "smoke", "--max-scenarios", "0"],
            ["campaign", "replay", "sdeadbeef0000", "--artifact", "/no/file"],
            ["run", "--protocol", "transformed", "--crash", "0:soon"],
            ["run", "--protocol", "transformed", "--attack", "juststring"],
        ],
    )
    def test_invalid_configs_exit_two(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
