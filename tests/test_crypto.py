"""Unit and property tests: canonical encoding, keys, signatures."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.encoding import canonical_bytes
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.errors import EncodingError, UnknownKeyError
from repro.messages.consensus import Init


# Values drawn from the encodable vocabulary.
encodable = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=15,
)


class TestCanonicalEncoding:
    @given(encodable)
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    def test_type_distinctions(self):
        # Values that compare equal or look alike must encode differently
        # when their types differ — otherwise signatures could be replayed
        # across types.
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)
        assert canonical_bytes("1") != canonical_bytes(1)
        assert canonical_bytes(b"x") != canonical_bytes("x")
        assert canonical_bytes(()) != canonical_bytes("")

    def test_dict_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({1, 2, 3})

    def test_tuple_order_dependent(self):
        assert canonical_bytes((1, 2)) != canonical_bytes((2, 1))

    def test_nesting_is_unambiguous(self):
        assert canonical_bytes(((1,), 2)) != canonical_bytes((1, (2,)))
        assert canonical_bytes((("ab",), "c")) != canonical_bytes(("a", ("bc",)))

    def test_message_bodies_encode_via_canonical(self):
        a = canonical_bytes(Init(sender=0, value="x"))
        b = canonical_bytes(Init(sender=0, value="x"))
        c = canonical_bytes(Init(sender=1, value="x"))
        assert a == b != c

    def test_distinct_message_types_distinct_encoding(self):
        from repro.messages.consensus import Next, VNext

        assert canonical_bytes(Next(sender=0, round=1)) != canonical_bytes(
            VNext(sender=0, round=1)
        )

    def test_unencodable_type_rejected(self):
        with pytest.raises(EncodingError):
            canonical_bytes(object())


class TestKeyAuthority:
    def test_signer_signs_as_itself(self):
        authority = KeyAuthority(3)
        signer = authority.signer_for(1)
        assert signer.pid == 1
        mac = signer.sign(b"data")
        assert authority.verify(1, b"data", mac)

    def test_cross_process_verification_fails(self):
        authority = KeyAuthority(3)
        mac = authority.signer_for(1).sign(b"data")
        assert not authority.verify(2, b"data", mac)

    def test_tampered_data_fails(self):
        authority = KeyAuthority(3)
        mac = authority.signer_for(0).sign(b"data")
        assert not authority.verify(0, b"datX", mac)

    def test_unknown_pid_rejected(self):
        with pytest.raises(UnknownKeyError):
            KeyAuthority(3).signer_for(5)

    def test_unknown_pid_verification_false(self):
        assert not KeyAuthority(3).verify(9, b"x", b"y")

    def test_keys_differ_across_seeds(self):
        mac_a = KeyAuthority(2, seed=1).signer_for(0).sign(b"m")
        mac_b = KeyAuthority(2, seed=2).signer_for(0).sign(b"m")
        assert mac_a != mac_b


class TestSignatureScheme:
    def _scheme(self, n=3):
        authority = KeyAuthority(n)
        return authority, SignatureScheme(authority)

    @given(encodable)
    def test_sign_verify_roundtrip(self, value):
        authority, scheme = self._scheme()
        signature = scheme.sign(authority.signer_for(0), value)
        assert scheme.verify(value, signature)

    @given(encodable)
    def test_forged_signature_rejected(self, value):
        _authority, scheme = self._scheme()
        forged = scheme.forge(0, value)
        assert not scheme.verify(value, forged)

    def test_signature_binds_signer(self):
        authority, scheme = self._scheme()
        signature = scheme.sign(authority.signer_for(0), "v")
        from dataclasses import replace

        stolen = replace(signature, signer=1)
        assert not scheme.verify("v", stolen)

    def test_signature_binds_value(self):
        authority, scheme = self._scheme()
        signature = scheme.sign(authority.signer_for(0), "v")
        assert not scheme.verify("w", signature)

    def test_forgeries_with_different_nonces_differ(self):
        _authority, scheme = self._scheme()
        assert scheme.forge(0, "v", nonce=0) != scheme.forge(0, "v", nonce=1)
