"""Unit tests: virtual clock and the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ClockError, SchedulerError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advances_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_allows_equal_timestamp(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_rejects_backwards_move(self):
        clock = VirtualClock(4.0)
        with pytest.raises(ClockError):
            clock.advance_to(3.9)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1))
    def test_monotone_under_sorted_advances(self, times):
        clock = VirtualClock()
        for t in sorted(times):
            clock.advance_to(t)
        assert clock.now == max(times)


class TestEventQueue:
    def test_empty_queue_has_no_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert queue.is_empty()

    def test_pop_on_empty_raises(self):
        with pytest.raises(SchedulerError):
            EventQueue().pop()

    def test_rejects_negative_time(self):
        with pytest.raises(SchedulerError):
            EventQueue().push(-0.1, "x", lambda: None)

    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, "b", lambda: order.append("b"))
        queue.push(1.0, "a", lambda: order.append("a"))
        queue.push(3.0, "c", lambda: order.append("c"))
        while not queue.is_empty():
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(1.0, label, lambda l=label: order.append(l))
        while not queue.is_empty():
            queue.pop().callback()
        assert order == list("abcde")

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        token = queue.push(1.0, "a", lambda: None)
        queue.push(2.0, "b", lambda: None)
        token.cancel()
        assert queue.pop().kind == "b"

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        token = queue.push(1.0, "a", lambda: None)
        queue.push(5.0, "b", lambda: None)
        token.cancel()
        assert queue.peek_time() == 5.0

    def test_all_cancelled_is_empty(self):
        queue = EventQueue()
        tokens = [queue.push(float(i), "x", lambda: None) for i in range(3)]
        for token in tokens:
            token.cancel()
        assert queue.is_empty()

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=50))
    def test_pop_order_is_globally_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, "x", lambda: None)
        popped = []
        while not queue.is_empty():
            popped.append(queue.pop().time)
        assert popped == sorted(times)

    def test_len_counts_pending(self):
        queue = EventQueue()
        queue.push(1.0, "a", lambda: None)
        queue.push(2.0, "b", lambda: None)
        assert len(queue) == 2
