"""Tests: the real-socket transport (repro.net.transport.PeerTransport).

Small asyncio deployments on loopback TCP: framed delivery both ways,
the authenticated hello gate, client connection routing, bounded
outbound queues dropping oldest, and automatic reconnect to a
restarted peer. Everything binds to OS-assigned free ports so tests
never collide.
"""

from __future__ import annotations

import asyncio

from repro.net.cluster import make_genesis
from repro.net.messages import ROLE_CLIENT
from repro.net.transport import PeerTransport
from repro.net.wire import FrameAssembler, encode_frame
from repro.observability.registry import MODULE_NET, MetricsRegistry


class Endpoint:
    """One PeerTransport plus an inbox and per-test metrics."""

    def __init__(self, genesis, pid, **kwargs):
        self.pid = pid
        self.inbox: list[tuple[int, object]] = []
        self.arrived = asyncio.Event()
        self.registry = MetricsRegistry()
        self.transport = PeerTransport(
            genesis,
            pid,
            self._receive,
            metrics=self.registry.scope(MODULE_NET, pid),
            **kwargs,
        )

    def _receive(self, src, message):
        self.inbox.append((src, message))
        self.arrived.set()

    async def expect(self, count, timeout=8.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.inbox) < count:
            remaining = deadline - asyncio.get_running_loop().time()
            self.arrived.clear()
            await asyncio.wait_for(self.arrived.wait(), max(0.05, remaining))
        return self.inbox

    def counter(self, name):
        return self.registry.counter_total(MODULE_NET, name)


def test_replicas_exchange_framed_messages():
    async def scenario():
        genesis = make_genesis(4, seed=21)
        a, b = Endpoint(genesis, 0), Endpoint(genesis, 1)
        await a.transport.start()
        await b.transport.start()
        try:
            a.transport.send(1, ("ping", 1))
            b.transport.send(0, ("pong", 2))
            a.transport.send(0, "self")  # self-delivery round-trips the codec
            assert (await b.expect(1))[0] == (0, ("ping", 1))
            await a.expect(2)
            assert set(a.inbox) == {(1, ("pong", 2)), (0, "self")}
            assert a.counter("frames_sent") == 2
            assert b.counter("frames_received") >= 1
        finally:
            await a.transport.stop()
            await b.transport.stop()

    asyncio.run(scenario())


def test_connections_without_a_valid_hello_are_refused():
    async def scenario():
        genesis = make_genesis(4, seed=22)
        node = Endpoint(genesis, 0)
        await node.transport.start()
        try:
            for opener in (
                encode_frame("not a hello"),
                encode_frame(genesis.hello_for(2, 1, "replica")),  # wrong target
                b"\x00" * 16,  # not even a frame
            ):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", node.transport.bound_port
                )
                writer.write(opener + encode_frame("smuggled"))
                await writer.drain()
                assert await reader.read() == b""  # server hung up on us
                writer.close()
            assert node.inbox == []  # nothing smuggled past the gate
            assert node.counter("hello_rejected") >= 2
        finally:
            await node.transport.stop()

    asyncio.run(scenario())


def test_client_replies_route_over_the_clients_own_connection():
    async def scenario():
        genesis = make_genesis(4, seed=23)
        node = Endpoint(genesis, 0)
        await node.transport.start()
        client_pid = genesis.n_replicas
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", node.transport.bound_port
            )
            writer.write(
                encode_frame(genesis.hello_for(client_pid, 0, ROLE_CLIENT))
            )
            writer.write(encode_frame(("request", 7)))
            await writer.drain()
            await node.expect(1)
            assert node.inbox == [(client_pid, ("request", 7))]
            node.transport.send(client_pid, ("reply", 7))
            assembler = FrameAssembler()
            messages = []
            while not messages:
                messages = assembler.feed(await reader.read(1 << 16))
            assert messages == [("reply", 7)]
            writer.close()
        finally:
            await node.transport.stop()

    asyncio.run(scenario())


def test_outbound_queue_drops_oldest_when_peer_is_down():
    async def scenario():
        genesis = make_genesis(4, seed=24)
        node = Endpoint(genesis, 0, queue_limit=8)
        await node.transport.start()
        try:
            for i in range(20):  # peer 1 never comes up
                node.transport.send(1, ("stale", i))
            assert node.counter("frames_dropped") >= 12
        finally:
            await node.transport.stop()

    asyncio.run(scenario())


def test_sender_reconnects_to_a_restarted_peer():
    async def scenario():
        genesis = make_genesis(4, seed=25)
        a, b = Endpoint(genesis, 0), Endpoint(genesis, 1)
        await a.transport.start()
        await b.transport.start()
        try:
            a.transport.send(1, "before")
            await b.expect(1)
            await b.transport.stop()  # crash the peer...
            a.transport.send(1, "into the void")  # may be lost: that's fine
            reborn = Endpoint(genesis, 1)
            await reborn.transport.start()  # ...and restart on the same port
            try:
                # Frames can die with the old connection — the contract
                # is that *retried* sends get through once the dialer's
                # backoff loop re-establishes the mesh, with no
                # orchestration beyond restarting the process.
                deadline = asyncio.get_running_loop().time() + 20.0
                while not reborn.inbox:
                    assert asyncio.get_running_loop().time() < deadline
                    a.transport.send(1, "after restart")
                    await asyncio.sleep(0.2)
                assert ("after restart" in {m for _, m in reborn.inbox}) or (
                    "into the void" in {m for _, m in reborn.inbox}
                )
                assert reborn.inbox[0][0] == 0
                assert a.counter("peer_reconnects") >= 1
            finally:
                await reborn.transport.stop()
        finally:
            await a.transport.stop()

    asyncio.run(scenario())
