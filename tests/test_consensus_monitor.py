"""Unit tests: the Figure 4 peer monitor and the monitor bank."""

from __future__ import annotations

import pytest

from repro.consensus.monitor import (
    FINAL,
    Q0,
    Q1,
    Q2,
    START,
    EquivocationLedger,
    MonitorBank,
    PeerMonitor,
)
from repro.core.automaton import FAULTY
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE
from repro.messages.consensus import VDecide, VNext
from tests.helpers import SignedWorkbench


@pytest.fixture
def bench():
    return SignedWorkbench(4)


def monitor_for(bench, peer=0) -> PeerMonitor:
    return PeerMonitor(peer, bench.params, bench.verify)


def suspicion_next(bench, sender, round_number=1):
    cert = Certificate(tuple(bench.init_quorum([0, 1, 2])))
    return bench.authorities[sender].make(
        VNext(sender=sender, round=round_number), cert
    )


def round_end_next(bench, sender, round_number):
    cert = Certificate(tuple(bench.next_quorum(round_number)))
    return bench.authorities[sender].make(
        VNext(sender=sender, round=round_number), cert
    )


def decide_message(bench, sender):
    coordinator_msg = bench.coordinator_current()
    relays = [bench.relay_current(pid, coordinator_msg) for pid in (1, 2)]
    cert = Certificate((coordinator_msg, *relays))
    return bench.authorities[sender].make(
        VDecide(sender=sender, est_vect=coordinator_msg.body.est_vect), cert
    )


class TestPeerMonitorPaths:
    def test_starts_in_start(self, bench):
        assert monitor_for(bench).state == START

    def test_init_then_current_path(self, bench):
        monitor = monitor_for(bench, peer=0)
        assert monitor.feed(bench.signed_init(0)).accepted
        assert monitor.state == Q0
        assert monitor.round == 1
        assert monitor.feed(bench.coordinator_current()).accepted
        assert monitor.state == Q1

    def test_init_then_next_path(self, bench):
        monitor = monitor_for(bench, peer=3)
        monitor.feed(bench.signed_init(3))
        assert monitor.feed(suspicion_next(bench, 3)).accepted
        assert monitor.state == Q2

    def test_current_then_next_then_new_round(self, bench):
        monitor = monitor_for(bench, peer=0)
        monitor.feed(bench.signed_init(0))
        monitor.feed(bench.coordinator_current())
        step = monitor.feed(round_end_next(bench, 0, 1))
        assert step.accepted and monitor.state == Q2
        # Round rollover: a NEXT for round 2 moves the stream forward.
        step = monitor.feed(round_end_next(bench, 0, 2))
        assert step.accepted
        assert monitor.round == 2 and monitor.state == Q2

    def test_decide_is_terminal(self, bench):
        monitor = monitor_for(bench, peer=1)
        monitor.feed(bench.signed_init(1))
        assert monitor.feed(decide_message(bench, 1)).accepted
        assert monitor.state == FINAL
        # Anything after DECIDE is out-of-order.
        step = monitor.feed(suspicion_next(bench, 1))
        assert not step.accepted
        assert monitor.faulty

    def test_vote_before_init_is_out_of_order(self, bench):
        monitor = monitor_for(bench, peer=0)
        step = monitor.feed(bench.coordinator_current())
        assert not step.accepted
        assert "out-of-order" in (step.reason or "")

    def test_duplicate_init_is_out_of_order(self, bench):
        monitor = monitor_for(bench, peer=0)
        monitor.feed(bench.signed_init(0))
        step = monitor.feed(bench.signed_init(0))
        assert not step.accepted

    def test_duplicate_current_is_out_of_order(self, bench):
        monitor = monitor_for(bench, peer=0)
        monitor.feed(bench.signed_init(0))
        monitor.feed(bench.coordinator_current())
        step = monitor.feed(bench.coordinator_current())
        assert not step.accepted

    def test_skipped_round_is_out_of_order(self, bench):
        monitor = monitor_for(bench, peer=0)
        monitor.feed(bench.signed_init(0))
        monitor.feed(bench.coordinator_current())
        monitor.feed(round_end_next(bench, 0, 1))
        # Round 3 without round 2: violation.
        step = monitor.feed(round_end_next(bench, 0, 3))
        assert not step.accepted

    def test_identity_mismatch_detected(self, bench):
        monitor = monitor_for(bench, peer=2)
        monitor.feed(bench.signed_init(2))
        # A CURRENT claiming sender 0 fed on peer 2's channel.
        step = monitor.feed(bench.coordinator_current())
        assert not step.accepted
        assert "identity mismatch" in (step.reason or "")

    def test_bad_certificate_faults(self, bench):
        monitor = monitor_for(bench, peer=0)
        monitor.feed(bench.signed_init(0))
        from repro.messages.consensus import VCurrent

        bare = bench.authorities[0].make(
            VCurrent(sender=0, round=1, est_vect=bench.vector_for([0, 1, 2])),
            EMPTY_CERTIFICATE,
        )
        step = monitor.feed(bare)
        assert not step.accepted
        assert monitor.faulty

    def test_cert_checks_can_be_ablated(self, bench):
        monitor = PeerMonitor(0, bench.params, bench.verify, check_certificates=False)
        monitor.feed(bench.signed_init(0))
        from repro.messages.consensus import VCurrent

        bare = bench.authorities[0].make(
            VCurrent(sender=0, round=1, est_vect=bench.vector_for([0, 1, 2])),
            EMPTY_CERTIFICATE,
        )
        assert monitor.feed(bare).accepted  # analyser off: admitted


class TestEquivocationLedger:
    def test_no_conflict_on_repeat(self, bench):
        ledger = EquivocationLedger(bench.verify)
        init = bench.signed_init(0)
        assert ledger.conflicts(init) == []
        assert ledger.conflicts(init) == []

    def test_conflicting_inits_detected(self, bench):
        ledger = EquivocationLedger(bench.verify)
        ledger.conflicts(bench.signed_init(0, "a"))
        found = ledger.conflicts(bench.signed_init(0, "b"))
        assert found and found[0][0] == 0

    def test_embedded_conflict_detected(self, bench):
        """A branch seen directly conflicts with one inside a certificate."""
        ledger = EquivocationLedger(bench.verify)
        ledger.conflicts(bench.signed_init(1, "branch-a"))
        # A CURRENT whose cert embeds the other branch of p1's INIT.
        other_branch = bench.signed_init(1, "branch-b")
        inits = [bench.signed_init(0), other_branch, bench.signed_init(2)]
        from repro.messages.consensus import NULL, VCurrent

        vector = ["v0", "branch-b", "v2", NULL]
        current = bench.authorities[0].make(
            VCurrent(sender=0, round=1, est_vect=tuple(vector)),
            Certificate(tuple(inits)),
        )
        found = ledger.conflicts(current)
        assert any(culprit == 1 for culprit, _ in found)

    def test_pruning_does_not_trigger_false_conflict(self, bench):
        ledger = EquivocationLedger(bench.verify)
        next_full = bench.authorities[0].make(
            VNext(sender=0, round=2), Certificate(tuple(bench.next_quorum(1)))
        )
        assert ledger.conflicts(next_full) == []
        assert ledger.conflicts(next_full.light()) == []

    def test_unverifiable_entries_skipped(self, bench):
        from repro.core.certificates import SignedMessage
        from repro.messages.consensus import Init

        ledger = EquivocationLedger(bench.verify)
        bogus = SignedMessage(
            body=Init(sender=0, value="x"),
            cert=EMPTY_CERTIFICATE,
            signature=bench.scheme.forge(0, "junk"),
        )
        assert ledger.conflicts(bogus) == []


class TestMonitorBank:
    def test_admit_valid_sequence(self, bench):
        bank = MonitorBank(3, bench.params, bench.verify)
        assert bank.admit(0, bench.signed_init(0), now=0.0)
        assert bank.admit(0, bench.coordinator_current(), now=1.0)
        assert bank.faulty == frozenset()

    def test_rejection_declares_faulty_once(self, bench):
        bank = MonitorBank(3, bench.params, bench.verify)
        bad = bench.coordinator_current()  # before INIT: out-of-order
        assert not bank.admit(0, bad, now=1.0)
        assert bank.faulty == frozenset({0})
        assert len(bank.reports) == 1
        # A second rejected message does not duplicate the report.
        assert not bank.admit(0, bad, now=2.0)
        assert len(bank.reports) == 1

    def test_own_messages_trusted(self, bench):
        bank = MonitorBank(0, bench.params, bench.verify)
        assert bank.admit(0, bench.coordinator_current(), now=0.0)

    def test_equivocation_declared_but_message_admitted(self, bench):
        bank = MonitorBank(3, bench.params, bench.verify)
        bank.admit(1, bench.signed_init(1, "a"), now=0.0)
        # p1 equivocates its INIT; the message still enters p3's automaton
        # view (which flags the duplicate INIT as out-of-order anyway).
        bank.admit(1, bench.signed_init(1, "b"), now=1.0)
        assert 1 in bank.faulty

    def test_state_of(self, bench):
        bank = MonitorBank(3, bench.params, bench.verify)
        bank.admit(0, bench.signed_init(0), now=0.0)
        assert bank.state_of(0) == Q0
        assert bank.state_of(3) == "self"
        bank.declare(2, "declared by signature module", now=1.0)
        assert bank.state_of(2) == FAULTY
