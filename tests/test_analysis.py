"""Unit tests: property checkers, metrics, batch runner, reporting."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_trials
from repro.analysis.metrics import certificate_entries, measure, payload_bytes
from repro.analysis.properties import (
    check_crash_consensus,
    check_detection,
    check_vector_consensus,
)
from repro.analysis.reporting import format_cell, percent, render_table
from repro.byzantine import crash_attack, transformed_attack
from repro.systems import build_crash_system, build_transformed_system
from tests.helpers import SignedWorkbench


def proposals(n):
    return [f"v{i}" for i in range(n)]


class TestPropertyCheckers:
    def test_clean_crash_run_reports_all_hold(self):
        system = build_crash_system(proposals(4), seed=0)
        system.run()
        report = check_crash_consensus(system)
        assert report.all_hold
        assert report.violations == []

    def test_undecided_run_reports_termination_failure(self):
        system = build_crash_system(proposals(4), seed=0)
        # Never run: nobody decided.
        report = check_crash_consensus(system)
        assert not report.termination
        assert any("termination" in v for v in report.violations)

    def test_validity_violation_spotted(self):
        system = build_crash_system(
            proposals(5), byzantine=crash_attack(4, "spurious-decide"), seed=1
        )
        system.run()
        report = check_crash_consensus(system)
        assert not report.validity

    def test_vector_checker_requires_transformed_system(self):
        system = build_crash_system(proposals(4), seed=0)
        with pytest.raises(ValueError):
            check_vector_consensus(system)

    def test_vector_checker_passes_clean_run(self):
        system = build_transformed_system(proposals(4), seed=0)
        system.run()
        report = check_vector_consensus(system)
        assert report.all_hold

    def test_detection_report_counts_detectors(self):
        system = build_transformed_system(
            proposals(4), byzantine=transformed_attack(3, "corrupt-vector"), seed=1
        )
        system.run()
        detection = check_detection(system)
        assert detection.detectors_per_culprit == {3: 3}
        assert detection.detected_by_all
        assert detection.clean

    def test_detection_report_without_byzantine(self):
        system = build_transformed_system(proposals(4), seed=0)
        system.run()
        detection = check_detection(system)
        assert not detection.detected_by_any
        assert detection.clean


class TestMetrics:
    def test_measure_counts_messages(self):
        system = build_transformed_system(proposals(4), seed=0)
        system.run()
        metrics = measure(system)
        assert metrics.messages_sent == system.world.network.messages_sent
        assert metrics.decided_count == 4
        assert metrics.protocol_bytes > 0
        assert metrics.signed_messages > 0
        assert metrics.mean_decision_round == 1.0

    def test_crash_protocol_has_no_signed_messages(self):
        system = build_crash_system(proposals(4), seed=0)
        system.run()
        metrics = measure(system)
        assert metrics.signed_messages == 0
        assert metrics.max_certificate_entries == 0

    def test_transformed_bytes_exceed_crash_bytes(self):
        crash = build_crash_system(proposals(4), seed=0)
        crash.run()
        transformed = build_transformed_system(proposals(4), seed=0)
        transformed.run()
        assert measure(transformed).protocol_bytes > measure(crash).protocol_bytes

    def test_certificate_entries_counts_recursively(self):
        bench = SignedWorkbench(4)
        coordinator_msg = bench.coordinator_current()
        relay = bench.relay_current(1, coordinator_msg)
        assert certificate_entries(coordinator_msg) == 3  # the INIT set
        assert certificate_entries(relay) == 1 + 3  # inner CURRENT + its INITs

    def test_payload_bytes_positive_and_monotone(self):
        bench = SignedWorkbench(4)
        init = bench.signed_init(0)
        current = bench.coordinator_current()
        assert 0 < payload_bytes(init) < payload_bytes(current)


class TestRunTrials:
    def test_aggregates_rates(self):
        summary = run_trials(
            builder=lambda seed: build_crash_system(proposals(4), seed=seed),
            checker=check_crash_consensus,
            seeds=range(5),
        )
        assert len(summary) == 5
        assert summary.termination_rate == 1.0
        assert summary.agreement_rate == 1.0
        assert summary.validity_rate == 1.0
        assert summary.violation_rate == 0.0
        assert summary.mean_messages > 0

    def test_violation_rate_under_attack(self):
        summary = run_trials(
            builder=lambda seed: build_crash_system(
                proposals(5),
                byzantine=crash_attack(4, "spurious-decide"),
                seed=seed,
            ),
            checker=check_crash_consensus,
            seeds=range(4),
        )
        assert summary.violation_rate == 1.0

    def test_detection_rates(self):
        summary = run_trials(
            builder=lambda seed: build_transformed_system(
                proposals(4),
                byzantine=transformed_attack(3, "corrupt-vector"),
                seed=seed,
            ),
            checker=check_vector_consensus,
            seeds=range(3),
        )
        assert summary.detection_by_any_rate == 1.0
        assert summary.false_positive_rate == 0.0

    def test_empty_summary_rates_are_zero(self):
        from repro.analysis.experiments import TrialSummary

        summary = TrialSummary()
        assert summary.termination_rate == 0.0
        assert summary.mean_messages is None


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(1.234) == "1.23"
        assert format_cell("x") == "x"

    def test_percent(self):
        assert percent(0.5) == "50%"
        assert percent(1.0) == "100%"

    def test_render_table_alignment(self):
        table = render_table("T", ["col", "x"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert "|" in lines[2]
        assert all("|" in line for line in lines[4:])

    def test_render_empty_table(self):
        table = render_table("Empty", ["a", "b"], [])
        assert "Empty" in table
