"""Property tests: the crypto layer's contracts under arbitrary values.

Complements ``test_crypto.py`` (hand-picked cases) with Hypothesis
sweeps over the full encodable vocabulary: sign/verify round-trips,
injectivity of the canonical encoding, and rejection of tampered
signed/certified messages.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.certificates import Certificate, EMPTY_CERTIFICATE, SignedMessage
from repro.crypto.encoding import canonical_bytes
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import Signature, SignatureScheme
from repro.messages.consensus import Init

from tests.helpers import SignedWorkbench

# Values drawn from the encodable vocabulary. Lists map to tuples and
# floats exclude NaN (NaN != NaN) and -0.0 (0.0 == -0.0 but their hex
# encodings differ) so that structural equality of draws is exactly the
# equality the encoding must respect.
encodable = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False).filter(lambda x: str(x) != "-0.0")
    | st.text(max_size=16)
    | st.binary(max_size=16),
    lambda children: st.lists(children, max_size=3).map(tuple)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=10,
)


class TestEncodingRoundTrip:
    @given(encodable, encodable)
    def test_injective(self, a, b):
        # The encoding is a bijection onto its image over this domain:
        # equal values encode equally, distinct values distinctly.
        if a == b:
            assert canonical_bytes(a) == canonical_bytes(b)
        else:
            assert canonical_bytes(a) != canonical_bytes(b)

    @given(encodable)
    def test_stable_across_calls(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)


class TestSignVerifyRoundTrip:
    @given(value=encodable, signer=st.integers(0, 3), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, value, signer, seed):
        scheme = SignatureScheme(KeyAuthority(4, seed=seed))
        signature = scheme.sign(scheme.authority.signer_for(signer), value)
        assert signature.signer == signer
        assert scheme.verify(value, signature)

    @given(value=encodable, other=encodable, signer=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_signature_does_not_transfer_to_other_values(
        self, value, other, signer
    ):
        scheme = SignatureScheme(KeyAuthority(4))
        signature = scheme.sign(scheme.authority.signer_for(signer), value)
        assert scheme.verify(other, signature) == (value == other)

    @given(value=encodable, signer=st.integers(0, 3), claimed=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_identity_is_bound(self, value, signer, claimed):
        scheme = SignatureScheme(KeyAuthority(4))
        signature = scheme.sign(scheme.authority.signer_for(signer), value)
        relabeled = Signature(signer=claimed, mac=signature.mac)
        assert scheme.verify(value, relabeled) == (claimed == signer)

    @given(value=encodable, claimed=st.integers(0, 3), nonce=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_forgeries_never_verify(self, value, claimed, nonce):
        scheme = SignatureScheme(KeyAuthority(4))
        forged = scheme.forge(claimed, value, nonce=nonce)
        assert not scheme.verify(value, forged)


class TestTamperedCertificates:
    @given(value=encodable)
    @settings(max_examples=40, deadline=None)
    def test_honest_message_verifies_even_pruned(self, value):
        bench = SignedWorkbench(4)
        message = bench.authorities[1].make(
            Init(sender=1, value=value), EMPTY_CERTIFICATE
        )
        assert bench.verify(message)
        assert bench.verify(message.light())

    @given(value=encodable, other=encodable)
    @settings(max_examples=40, deadline=None)
    def test_tampered_body_rejected(self, value, other):
        bench = SignedWorkbench(4)
        message = bench.authorities[1].make(
            Init(sender=1, value=value), EMPTY_CERTIFICATE
        )
        tampered = SignedMessage(
            body=Init(sender=1, value=other),
            cert=message.cert,
            signature=message.signature,
        )
        assert bench.verify(tampered) == (value == other)

    def test_tampered_certificate_rejected(self):
        # The signature covers the certificate digest: swapping the
        # certificate under a CURRENT changes the digest and must be
        # rejected, exactly the paper's "cannot falsify history" claim.
        bench = SignedWorkbench(4)
        current = bench.coordinator_current(round_number=1)
        assert bench.verify(current)
        full = current.full_cert()
        smaller = Certificate(full.entries[:-1])
        tampered = SignedMessage(
            body=current.body, cert=smaller, signature=current.signature
        )
        assert not bench.verify(tampered)

    def test_stolen_signature_rejected(self):
        # Re-using p1's signature on a body claiming sender p2 fails the
        # identity check before the MAC is even consulted.
        bench = SignedWorkbench(4)
        message = bench.signed_init(1, value="v")
        stolen = SignedMessage(
            body=Init(sender=2, value="v"),
            cert=EMPTY_CERTIFICATE,
            signature=message.signature,
        )
        assert not bench.verify(stolen)

    @given(flip=st.integers(0, 255), position=st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_bitflipped_mac_rejected(self, flip, position):
        bench = SignedWorkbench(4)
        message = bench.signed_init(0, value="payload")
        mac = bytearray(message.signature.mac)
        mac[position] ^= flip
        mangled = SignedMessage(
            body=message.body,
            cert=message.cert,
            signature=Signature(signer=0, mac=bytes(mac)),
        )
        assert bench.verify(mangled) == (flip == 0)
