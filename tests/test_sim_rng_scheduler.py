"""Unit tests: seeded RNG streams and the scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulerError
from repro.sim.rng import SeededRng
from repro.sim.scheduler import Scheduler


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_forked_streams_are_independent(self):
        parent = SeededRng(7)
        child_a = parent.fork("a")
        child_b = parent.fork("b")
        assert [child_a.random() for _ in range(5)] != [
            child_b.random() for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        one = SeededRng(7).fork("net")
        two = SeededRng(7).fork("net")
        assert [one.random() for _ in range(5)] == [two.random() for _ in range(5)]

    def test_fork_independent_of_parent_consumption(self):
        parent_a = SeededRng(7)
        parent_a.random()
        parent_b = SeededRng(7)
        assert parent_a.fork("x").random() == parent_b.fork("x").random()

    @given(st.integers(min_value=0, max_value=2**31))
    def test_uniform_respects_bounds(self, seed):
        rng = SeededRng(seed)
        for _ in range(20):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    @given(st.integers(min_value=0, max_value=2**31))
    def test_randint_inclusive(self, seed):
        rng = SeededRng(seed)
        values = {rng.randint(0, 2) for _ in range(100)}
        assert values <= {0, 1, 2}

    def test_chance_extremes(self):
        rng = SeededRng(0)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))


class TestScheduler:
    def test_runs_to_quiescence(self):
        sched = Scheduler()
        fired = []
        sched.schedule_at(1.0, "a", lambda: fired.append(1))
        result = sched.run()
        assert result.quiescent()
        assert fired == [1]
        assert sched.now == 1.0

    def test_callbacks_can_schedule_more(self):
        sched = Scheduler()
        fired = []

        def first():
            fired.append("first")
            sched.schedule_after(1.0, "b", lambda: fired.append("second"))

        sched.schedule_at(0.5, "a", first)
        result = sched.run()
        assert result.quiescent()
        assert fired == ["first", "second"]
        assert sched.now == 1.5

    def test_max_events_budget(self):
        sched = Scheduler()

        def reschedule():
            sched.schedule_after(1.0, "loop", reschedule)

        sched.schedule_at(0.0, "loop", reschedule)
        result = sched.run(max_events=10)
        assert result.reason == "max_events"
        assert result.events_dispatched == 10

    def test_max_time_budget(self):
        sched = Scheduler()
        fired = []
        sched.schedule_at(1.0, "a", lambda: fired.append("a"))
        sched.schedule_at(100.0, "b", lambda: fired.append("b"))
        result = sched.run(max_time=50.0)
        assert result.reason == "max_time"
        assert fired == ["a"]
        assert sched.now == 50.0

    def test_stop_ends_run(self):
        sched = Scheduler()
        fired = []

        def first_and_stop():
            fired.append("a")
            sched.stop()

        sched.schedule_at(1.0, "a", first_and_stop)
        sched.schedule_at(2.0, "b", lambda: fired.append("b"))
        result = sched.run()
        assert result.reason == "stopped"
        assert fired == ["a"]

    def test_cannot_schedule_in_past(self):
        sched = Scheduler()
        sched.schedule_at(5.0, "a", lambda: None)
        sched.run()
        with pytest.raises(SchedulerError):
            sched.schedule_at(1.0, "late", lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Scheduler().schedule_after(-1.0, "x", lambda: None)

    def test_deterministic_interleaving(self):
        def run_once() -> list[str]:
            sched = Scheduler(seed=3)
            rng = sched.rng.fork("test")
            order: list[str] = []
            for label in "abcdef":
                sched.schedule_at(
                    rng.uniform(0, 10), label, lambda l=label: order.append(l)
                )
            sched.run()
            return order

        assert run_once() == run_once()

    def test_events_dispatched_accumulates(self):
        sched = Scheduler()
        for i in range(5):
            sched.schedule_at(float(i), "x", lambda: None)
        sched.run()
        assert sched.events_dispatched == 5
