"""Unit and property tests: the statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    min_trials_for_zero_failures,
    rate_with_ci,
    wilson_interval,
)
from repro.errors import ConfigurationError


class TestWilsonInterval:
    def test_half_and_half_is_centred(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert abs((0.5 - low) - (high - 0.5)) < 1e-9

    def test_zero_successes_has_positive_width(self):
        low, high = wilson_interval(0, 25)
        assert low == 0.0
        assert high > 0.0

    def test_all_successes_excludes_low_rates(self):
        low, high = wilson_interval(25, 25)
        assert high == 1.0
        assert low > 0.85

    def test_more_trials_narrow_the_interval(self):
        low_small, high_small = wilson_interval(9, 10)
        low_large, high_large = wilson_interval(900, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_higher_confidence_widens(self):
        narrow = wilson_interval(20, 25, confidence=0.90)
        wide = wilson_interval(20, 25, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 2, confidence=0.80)

    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    def test_interval_always_brackets_the_point_estimate(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        p = successes / trials
        assert 0.0 <= low <= p <= high <= 1.0


class TestFormatting:
    def test_rate_with_ci(self):
        text = rate_with_ci(25, 25)
        assert text.startswith("100% [")
        assert text.endswith("100%]")

    def test_rate_with_ci_midrange(self):
        assert rate_with_ci(5, 10).startswith("50% [")


class TestBatchSizing:
    def test_known_threshold(self):
        # 0 failures in n trials certifies >= 90% at 95% confidence for a
        # batch in the tens — and the returned n is exactly sufficient.
        n = min_trials_for_zero_failures(0.90)
        low_at_n, _ = wilson_interval(n, n)
        assert low_at_n >= 0.90
        low_before, _ = wilson_interval(n - 1, n - 1)
        assert low_before < 0.90

    def test_stricter_targets_need_more_trials(self):
        assert min_trials_for_zero_failures(0.99) > min_trials_for_zero_failures(0.90)

    def test_invalid_target_rejected(self):
        with pytest.raises(ConfigurationError):
            min_trials_for_zero_failures(1.0)
