"""Tests: per-slot certificate verification of transferred state.

Satellite of the net PR: a state-transfer suffix is exactly as
untrusted as the snapshot, so every ``(slot, vector, justification)``
entry must carry the responder's signed DECIDE plus an (n − F)
same-round quorum of validly signed matching CURRENTs — all under the
slot's own signature domain. These tests drive
:meth:`ServiceReplicaProcess._suffix_entry_valid` and the
:meth:`_on_state_response` replay path with honest and forged suffixes
and assert forgeries are *counted rejections*, never installs and
never crashes.
"""

from __future__ import annotations

import pytest

from repro.core.certificates import Certificate, CertificationAuthority
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.messages.consensus import NULL, VCurrent, VDecide
from repro.service import ServiceConfig, build_service_system
from repro.service.messages import StateResponse


def make_replica(seed=9):
    return build_service_system(ServiceConfig(seed=seed)).replicas[0]


def justification(
    config,
    slot,
    vect,
    *,
    signers=None,
    domain_slot=None,
    decide_vect=None,
    rounds=None,
    with_cert=True,
):
    """Build a (possibly deliberately broken) transfer justification."""
    keys = KeyAuthority(
        config.n_replicas,
        seed=config.seed * 1_000_003
        + (slot if domain_slot is None else domain_slot),
    )
    scheme = SignatureScheme(keys)

    def authority(pid):
        return CertificationAuthority(scheme, keys.signer_for(pid))

    if signers is None:
        signers = range(config.params().quorum)
    signers = tuple(signers)
    if rounds is None:
        rounds = (1,) * len(signers)
    entries = tuple(
        authority(pid).make(VCurrent(sender=pid, round=rnd, est_vect=vect))
        for pid, rnd in zip(signers, rounds)
    )
    decide = VDecide(
        sender=0, est_vect=vect if decide_vect is None else decide_vect
    )
    if with_cert:
        return authority(0).make(decide, cert=Certificate(entries))
    return authority(0).make(decide)


class TestSuffixEntryValidation:
    def setup_method(self):
        self.replica = make_replica()
        self.config = self.replica.config
        self.vect = (NULL,) * self.config.n_replicas

    def test_honest_justification_accepted(self):
        good = justification(self.config, 3, self.vect)
        assert self.replica._suffix_entry_valid(3, self.vect, good)

    def test_vector_shape_must_match_the_cluster(self):
        good = justification(self.config, 3, self.vect)
        assert not self.replica._suffix_entry_valid(3, self.vect[:-1], good)
        assert not self.replica._suffix_entry_valid(3, list(self.vect), good)

    def test_missing_or_non_message_justification_rejected(self):
        assert not self.replica._suffix_entry_valid(3, self.vect, None)
        assert not self.replica._suffix_entry_valid(3, self.vect, b"decide")

    def test_decide_over_a_different_vector_rejected(self):
        other = ("x",) + (NULL,) * (self.config.n_replicas - 1)
        mismatched = justification(self.config, 3, self.vect, decide_vect=other)
        assert not self.replica._suffix_entry_valid(3, self.vect, mismatched)

    def test_tampered_vector_fails_against_honest_justification(self):
        good = justification(self.config, 3, self.vect)
        tampered = ("forged",) + self.vect[1:]
        assert not self.replica._suffix_entry_valid(3, tampered, good)

    def test_cross_slot_replay_rejected(self):
        # Signed perfectly validly — for slot 4's key domain. Nothing
        # signed for one slot may be believed for another.
        replayed = justification(self.config, 3, self.vect, domain_slot=4)
        assert not self.replica._suffix_entry_valid(3, self.vect, replayed)

    def test_sub_quorum_of_currents_rejected(self):
        quorum = self.config.params().quorum
        thin = justification(
            self.config, 3, self.vect, signers=range(quorum - 1)
        )
        assert not self.replica._suffix_entry_valid(3, self.vect, thin)

    def test_quorum_must_be_same_round(self):
        quorum = self.config.params().quorum
        split = justification(
            self.config,
            3,
            self.vect,
            signers=range(quorum),
            rounds=(1,) * (quorum - 1) + (2,),
        )
        assert not self.replica._suffix_entry_valid(3, self.vect, split)

    def test_pruned_certificate_cannot_be_rechecked(self):
        bare = justification(self.config, 3, self.vect, with_cert=False)
        assert not self.replica._suffix_entry_valid(3, self.vect, bare)

    @pytest.mark.parametrize(
        "vector, proof", [(object(), 42), ((), ()), (None, None)]
    )
    def test_garbage_is_a_rejection_not_a_crash(self, vector, proof):
        assert not self.replica._suffix_entry_valid(3, vector, proof)


class TestTransferReplay:
    def test_forged_entries_counted_honest_entries_applied(self):
        replica = make_replica(seed=10)
        vect = (NULL,) * replica.config.n_replicas
        response = StateResponse(
            replica=1,
            count=0,
            snapshot=(),
            executed=(),
            store_applied=0,
            certificate=None,
            suffix=(
                (0, vect, justification(replica.config, 0, vect)),
                (1, vect, justification(replica.config, 1, vect, domain_slot=7)),
                ("one", vect),  # malformed shape
                (2, vect, None),  # proof stripped in flight
            ),
        )
        replica._on_state_response(response)
        # Slot 0 verified and applied; slots 1-2 and the malformed entry
        # rejected, each counted, and the apply frontier never crossed
        # the unproven gap.
        assert replica.next_apply == 1
        assert replica.suffix_rejections == 3
        assert 1 not in replica._pending_apply
        assert replica.state_transfers_completed

    def test_all_forged_suffix_makes_no_progress(self):
        replica = make_replica(seed=11)
        vect = (NULL,) * replica.config.n_replicas
        forged = justification(replica.config, 0, vect, domain_slot=5)
        response = StateResponse(
            replica=2,
            count=0,
            snapshot=(),
            executed=(),
            store_applied=0,
            certificate=None,
            suffix=((0, vect, forged),),
        )
        replica._on_state_response(response)
        assert replica.next_apply == 0
        assert replica.suffix_rejections == 1
        assert not replica.state_transfers_completed
