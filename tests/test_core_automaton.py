"""Unit tests: the generic behaviour state machine."""

from __future__ import annotations

import pytest

from repro.core.automaton import FAULTY, BehaviorViolation, StateMachine
from repro.core.certificates import EMPTY_CERTIFICATE, SignedMessage
from repro.crypto.signatures import Signature
from repro.errors import ProtocolError
from repro.messages.consensus import Current, Decide, Next


def wrap(body) -> SignedMessage:
    """Unverified envelope — these tests exercise the machine, not crypto."""
    return SignedMessage(
        body=body, cert=EMPTY_CERTIFICATE, signature=Signature(signer=-1, mac=b"")
    )


def machine_abc() -> StateMachine:
    """a --Current--> b --Next--> c; Decide allowed in b with a guard."""
    machine = StateMachine(initial="a")
    machine.add_rule("a", Current, lambda m: "b")

    def guarded(message):
        if message.body.est == "bad":
            raise BehaviorViolation("bad estimate")
        return "c"

    machine.add_rule("b", Decide, guarded)
    machine.add_rule("b", Next, lambda m: "c")
    return machine


class TestStateMachine:
    def test_initial_state(self):
        assert machine_abc().state == "a"

    def test_accepting_transition(self):
        machine = machine_abc()
        step = machine.feed(wrap(Current(sender=0, round=1, est="x")))
        assert step.accepted
        assert machine.state == "b"

    def test_out_of_order_faults(self):
        machine = machine_abc()
        step = machine.feed(wrap(Next(sender=0, round=1)))  # Next not enabled in a
        assert not step.accepted
        assert machine.faulty
        assert "out-of-order" in (step.reason or "")

    def test_violation_faults_with_reason(self):
        machine = machine_abc()
        machine.feed(wrap(Current(sender=0, round=1, est="x")))
        step = machine.feed(wrap(Decide(sender=0, est="bad")))
        assert not step.accepted
        assert machine.fault_reason == "bad estimate"

    def test_faulty_is_absorbing(self):
        machine = machine_abc()
        machine.feed(wrap(Next(sender=0, round=1)))
        assert machine.faulty
        step = machine.feed(wrap(Current(sender=0, round=1, est="x")))
        assert not step.accepted
        assert machine.state == FAULTY

    def test_guard_acceptance(self):
        machine = machine_abc()
        machine.feed(wrap(Current(sender=0, round=1, est="x")))
        step = machine.feed(wrap(Decide(sender=0, est="good")))
        assert step.accepted
        assert machine.state == "c"

    def test_enabled_types(self):
        machine = machine_abc()
        assert machine.enabled_types() == frozenset({"Current"})
        assert machine.enabled_types("b") == frozenset({"Decide", "Next"})
        assert machine.enabled_types("c") == frozenset()

    def test_force_state(self):
        machine = machine_abc()
        machine.force_state("b")
        assert machine.state == "b"

    def test_force_state_cannot_leave_faulty(self):
        machine = machine_abc()
        machine.feed(wrap(Next(sender=0, round=1)))
        machine.force_state("a")
        assert machine.state == FAULTY

    def test_duplicate_rule_rejected(self):
        machine = machine_abc()
        with pytest.raises(ProtocolError):
            machine.add_rule("a", Current, lambda m: "z")

    def test_out_of_order_reason_lists_enabled(self):
        machine = machine_abc()
        step = machine.feed(wrap(Decide(sender=0, est="x")))
        assert "Current" in (step.reason or "")
