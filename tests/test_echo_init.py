"""Integration tests: the echo-INIT variant of the transformed protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.properties import check_detection, check_vector_consensus
from repro.byzantine import transformed_attack
from repro.byzantine.echo_attacks import echo_equivocation_attack
from repro.errors import ConfigurationError
from repro.messages.consensus import NULL
from repro.sim.network import UniformDelay
from repro.systems import build_transformed_system


def proposals(n):
    return [f"v{i}" for i in range(n)]


def built_slot_values(system, slot):
    """Distinct non-null values correct processes hold for ``slot``."""
    values = {
        event.detail["vector"][slot]
        for event in system.world.trace.of_kind("vector-built")
        if event.process in system.correct_pids
    }
    values.discard(NULL)
    return values


class TestEchoInitHappyPath:
    def test_clean_run_decides(self):
        system = build_transformed_system(proposals(4), variant="echo-init", seed=1)
        result = system.run()
        assert result.quiescent()
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_no_false_declarations(self):
        system = build_transformed_system(proposals(7), variant="echo-init", seed=2)
        system.run()
        assert all(p.faulty == frozenset() for p in system.processes)

    @pytest.mark.parametrize("n", [4, 7])
    def test_sizes(self, n):
        system = build_transformed_system(proposals(n), variant="echo-init", seed=3)
        system.run(max_time=2_000)
        assert check_vector_consensus(system).all_hold

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            build_transformed_system(proposals(4), variant="morse-code")


class TestEchoInitUnderFaults:
    def test_crash_tolerated(self):
        system = build_transformed_system(
            proposals(4), variant="echo-init", crash_at={0: 0.0}, seed=4
        )
        system.run(max_time=3_000)
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_corrupt_vector_attacker_still_convicted(self):
        # The round machinery is unchanged: certificate analysis works the
        # same on top of the RB INIT phase.
        system = build_transformed_system(
            proposals(4),
            variant="echo-init",
            byzantine=transformed_attack(3, "corrupt-vector"),
            seed=5,
        )
        system.run(max_time=3_000)
        assert check_vector_consensus(system).all_hold
        assert check_detection(system).detected_by_any

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_rb_equivocator_cannot_diverge_slots(self, seed):
        """RB consistency: the equivocator's slot is uniform everywhere."""
        system = build_transformed_system(
            proposals(4),
            variant="echo-init",
            byzantine=echo_equivocation_attack(3),
            seed=seed,
            delay_model=UniformDelay(0.1, 2.0),
        )
        system.run(max_time=1_000)
        assert len(built_slot_values(system, 3)) <= 1
        report = check_vector_consensus(system)
        assert report.all_hold, report.violations

    def test_plain_variant_does_diverge_for_contrast(self):
        diverged = 0
        for seed in range(20):
            system = build_transformed_system(
                proposals(4),
                byzantine=transformed_attack(3, "equivocate-init"),
                seed=seed,
                delay_model=UniformDelay(0.1, 2.0),
            )
            system.run(max_time=1_000)
            if len(built_slot_values(system, 3)) > 1:
                diverged += 1
        assert diverged > 0
