"""Integration tests: arbitrary faults break the crash-model protocol.

These are the paper's *motivation*, reproduced as assertions: the crash
protocol has no defence against non-crash faults, so specific attacks
provably violate its specification (experiment E2 aggregates this over
many seeds; here we pin one deterministic witness per attack).
"""

from __future__ import annotations

import pytest

from repro.analysis.properties import check_crash_consensus
from repro.byzantine import CRASH_ATTACKS, crash_attack
from repro.byzantine.crash_attacks import POISON
from repro.sim.network import FixedDelay, UniformDelay
from repro.systems import build_crash_system


def proposals(n):
    return [f"v{i}" for i in range(n)]


def run_attack(name, pid=4, n=5, seed=0, delay_model=None):
    system = build_crash_system(
        proposals(n),
        byzantine=crash_attack(pid, name),
        seed=seed,
        delay_model=delay_model,
    )
    system.run(max_time=2_000)
    return system


class TestAttackCatalog:
    def test_catalog_is_complete(self):
        assert set(CRASH_ATTACKS) == {
            "spurious-decide",
            "value-corruption",
            "equivocation",
            "duplication",
            "identity-forgery",
            "wrong-round",
            "mute",
        }

    def test_every_attack_has_a_profile(self):
        for cls in CRASH_ATTACKS.values():
            assert cls.profile.name in CRASH_ATTACKS

    def test_unknown_attack_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            crash_attack(0, "no-such-attack")


class TestSafetyViolations:
    def test_spurious_decide_breaks_validity(self):
        system = run_attack("spurious-decide", seed=1)
        report = check_crash_consensus(system)
        assert not report.validity
        assert any(d == POISON for d in system.decisions().values())

    def test_value_corruption_by_coordinator_breaks_validity(self):
        # The attacker holds the round-1 coordinator seat: its corrupted
        # estimate is adopted and decided by everyone.
        system = build_crash_system(
            proposals(5),
            byzantine=crash_attack(0, "value-corruption"),
            seed=2,
        )
        system.run(max_time=2_000)
        report = check_crash_consensus(system)
        assert not report.validity
        assert POISON in system.decisions().values()

    def test_identity_forgery_breaks_safety(self):
        # Forged votes arriving before the real coordinator's CURRENT get
        # adopted and relayed; under most random schedules the poison
        # value (never proposed) ends up decided.
        violated = 0
        for seed in range(20):
            system = run_attack(
                "identity-forgery", seed=seed, delay_model=UniformDelay(0.1, 3.0)
            )
            report = check_crash_consensus(system)
            if not (report.agreement and report.validity):
                violated += 1
        assert violated > 0

    def test_equivocation_can_split_decisions(self):
        # The attacker coordinates round 1 and tells each half a different
        # value; some schedule yields an agreement or validity violation.
        violated = False
        for seed in range(40):
            system = build_crash_system(
                proposals(5),
                byzantine=crash_attack(0, "equivocation"),
                seed=seed,
                delay_model=UniformDelay(0.1, 3.0),
            )
            system.run(max_time=2_000)
            report = check_crash_consensus(system)
            if not (report.agreement and report.validity):
                violated = True
                break
        assert violated

    def test_duplication_manufactures_quorums(self):
        """With 3 of 5 processes crashed no majority exists, so the honest
        protocol must block — but a duplicating coordinator fabricates a
        CURRENT 'majority' out of two live processes and a decision is
        manufactured where none is possible."""
        crashes = {1: 0.0, 2: 0.0, 3: 0.0}
        honest = build_crash_system(proposals(5), crash_at=crashes, seed=1)
        honest.run(max_time=300)
        assert honest.decisions() == {}
        attacked = build_crash_system(
            proposals(5),
            crash_at=crashes,
            byzantine=crash_attack(0, "duplication"),
            seed=1,
        )
        attacked.run(max_time=300)
        assert attacked.decisions(), "the fake quorum produced a decision"


class TestToleratedAttacks:
    def test_mute_attacker_is_just_a_crash(self):
        system = run_attack("mute", seed=5)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    def test_wrong_round_alone_does_not_block_termination(self):
        system = run_attack("wrong-round", seed=6)
        report = check_crash_consensus(system)
        assert report.termination
