"""Integration tests: the crash-model protocols (Figure 2 and CT)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.properties import check_crash_consensus
from repro.consensus.hurfin_raynal import coordinator_of
from repro.sim.network import ExponentialDelay, UniformDelay
from repro.systems import build_crash_system

PROTOCOLS = ["hurfin-raynal", "chandra-toueg"]


def proposals(n):
    return [f"v{i}" for i in range(n)]


class TestCoordinatorRotation:
    def test_round_one_led_by_process_zero(self):
        assert coordinator_of(1, 5) == 0

    def test_rotation_wraps(self):
        assert [coordinator_of(r, 3) for r in range(1, 7)] == [0, 1, 2, 0, 1, 2]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestFailureFreeRuns:
    def test_all_decide_same_proposed_value(self, protocol):
        system = build_crash_system(proposals(5), protocol=protocol, seed=1)
        result = system.run()
        assert result.quiescent()
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    def test_decided_value_is_a_proposal(self, protocol):
        system = build_crash_system(proposals(5), protocol=protocol, seed=3)
        system.run()
        decided = {p.decision for p in system.processes}
        assert len(decided) == 1
        assert decided <= set(proposals(5))


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestCrashTolerance:
    def test_tolerates_non_coordinator_crash(self, protocol):
        system = build_crash_system(
            proposals(5), crash_at={3: 0.01}, protocol=protocol, seed=4
        )
        system.run()
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    def test_tolerates_initial_coordinator_crash(self, protocol):
        system = build_crash_system(
            proposals(5), crash_at={0: 0.0}, protocol=protocol, seed=5
        )
        system.run(max_time=2_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations
        # The decision must have taken more than one round (the first
        # coordinator was dead before proposing).
        deciders = [p for p in system.processes if p.decided]
        assert all(p.decision_round >= 2 for p in deciders)

    def test_tolerates_maximum_crashes(self, protocol):
        n = 5
        system = build_crash_system(
            proposals(n), crash_at={0: 0.0, 1: 0.0}, protocol=protocol, seed=6
        )
        system.run(max_time=2_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    def test_mid_round_crash(self, protocol):
        system = build_crash_system(
            proposals(7), crash_at={0: 1.2, 5: 2.5}, protocol=protocol, seed=7
        )
        system.run(max_time=2_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations


class TestHurfinRaynalSpecifics:
    def test_failure_free_decides_coordinator_value_in_round_one(self):
        """Figure 2's happy path: the first coordinator imposes its value
        and everyone decides it within round 1."""
        system = build_crash_system(proposals(5), seed=2)
        system.run()
        assert all(p.decision == "v0" for p in system.processes)
        assert all(p.decision_round == 1 for p in system.processes)

    def test_decide_relay_reaches_latecomers(self):
        # Heavy-tailed delays: some process likely decides via the DECIDE
        # relay task rather than its own vote count.
        system = build_crash_system(
            proposals(5),
            seed=8,
            delay_model=ExponentialDelay(mean=2.0, base=0.1, cap=30.0),
        )
        system.run(max_time=2_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    def test_false_suspicions_delay_but_do_not_break(self):
        system = build_crash_system(
            proposals(5),
            seed=9,
            fd_noise_rate=0.6,
            fd_accuracy_time=15.0,
        )
        system.run(max_time=3_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_safety_across_random_schedules(self, seed):
        """Agreement + Validity hold for every schedule (FIFO adoption
        argument, DESIGN.md §5), even with pre-horizon detector noise."""
        system = build_crash_system(
            proposals(5),
            crash_at={1: 2.0},
            seed=seed,
            fd_noise_rate=0.3,
            fd_accuracy_time=10.0,
            delay_model=UniformDelay(0.1, 3.0),
        )
        system.run(max_time=3_000)
        report = check_crash_consensus(system)
        assert report.agreement and report.validity, report.violations


class TestChandraTouegSpecifics:
    def test_estimate_locking_carries_highest_timestamp(self):
        # After a first-round decision every process's ts is 1 or 0; this
        # is a smoke test of the phase machinery via a multi-round run.
        system = build_crash_system(
            proposals(4),
            crash_at={0: 0.0},
            protocol="chandra-toueg",
            seed=10,
        )
        system.run(max_time=2_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations
        deciders = [p for p in system.processes if p.decided and p.pid != 0]
        assert deciders
