"""Adversarial tests: verification caching must never launder a forgery.

The caches (docs/PERFORMANCE.md) memoize verification *verdicts* keyed
by content digests. These tests attack exactly the properties the
design note argues for:

* a tampered envelope's digest collides with nothing cached, so a warm
  cache still rejects it with a real (failing) verification;
* verdicts are pinned to ``(domain, signer)`` — an accept cached under
  one key domain or signer identity never answers for another;
* the :class:`~repro.consensus.certification.PredicateCache` memoizes
  *clean* analyses only — a bad message stays bad on every re-analysis;
* forged CURRENT quorums inside state-transfer suffixes still land in
  ``suffix_rejections`` when every cache is warm;
* the :func:`~repro.crypto.cache.caching_disabled` kill-switch really
  disables memoization (the benchmark baseline is honest).
"""

from __future__ import annotations

import dataclasses

from repro.consensus.certification import (
    PredicateCache,
    current_message_problems,
    decide_message_problems,
)
from repro.core.certificates import Certificate, CertificationAuthority
from repro.crypto.cache import (
    SignatureCache,
    caching_disabled,
    caching_enabled,
)
from repro.crypto.encoding import canonical_bytes
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.messages.consensus import NULL, Init, VCurrent
from repro.service import ServiceConfig, build_service_system
from repro.service.checkpoint import CheckpointCertCache, certificate_valid
from repro.service.messages import StateResponse

from tests.helpers import SignedWorkbench
from tests.test_service_transfer import justification, make_replica


class TestSignatureCacheKeying:
    def test_hits_misses_and_bound(self):
        cache = SignatureCache(max_entries=2)
        assert cache.lookup(("k1",)) is None
        cache.store(("k1",), True)
        assert cache.lookup(("k1",)) is True
        cache.store(("k2",), False)
        cache.store(("k3",), True)  # evicts k1 (oldest)
        assert len(cache) == 2
        assert cache.lookup(("k1",)) is None
        assert cache.hits == 1
        assert cache.misses == 2

    def test_tampered_envelope_rejected_with_warm_cache(self):
        bench = SignedWorkbench(4)
        message = bench.signed_init(1)
        # Warm: the honest envelope's accept is now cached.
        assert bench.verify(message)
        assert bench.verify(message)
        assert bench.scheme.cache.hits >= 1
        # Tamper with the signed body. The digest of the tampered bytes
        # collides with nothing cached, so the lookup misses and the
        # real MAC comparison fails.
        forged = dataclasses.replace(
            message, body=Init(sender=1, value="forged")
        )
        assert not bench.verify(forged)
        assert not bench.verify(forged)  # the cached *reject* answers now

    def test_accept_is_pinned_to_the_claimed_signer(self):
        bench = SignedWorkbench(4)
        message = bench.signed_init(1)
        assert bench.verify(message)
        # Same bytes, same MAC, different claimed identity: the cache
        # key differs in the signer component, so this is a fresh (and
        # failing) verification, not a hit.
        stolen = dataclasses.replace(
            message,
            signature=dataclasses.replace(message.signature, signer=2),
        )
        assert not bench.verify(stolen)

    def test_accept_is_pinned_to_the_key_domain(self):
        # Two clusters (different derivation seeds) sharing one cache —
        # the service replica does exactly this across slot domains.
        shared = SignatureCache()
        keys_a = KeyAuthority(4, seed=100)
        keys_b = KeyAuthority(4, seed=200)
        scheme_a = SignatureScheme(keys_a, cache=shared)
        scheme_b = SignatureScheme(keys_b, cache=shared)
        auth_a = CertificationAuthority(scheme_a, keys_a.signer_for(0))
        auth_b = CertificationAuthority(scheme_b, keys_b.signer_for(0))
        message = auth_a.make(Init(sender=0, value="x"))
        assert auth_a.signature_valid(message)
        assert auth_a.signature_valid(message)
        assert shared.hits == 1
        # Replaying domain A's envelope into domain B misses (the domain
        # is part of the key) and fails the real verification.
        assert not auth_b.signature_valid(message)

    def test_kill_switch_disables_memoization(self):
        bench = SignedWorkbench(4)
        message = bench.signed_init(0)
        with caching_disabled():
            assert not caching_enabled()
            assert bench.verify(message)
            assert bench.verify(message)
            assert len(bench.scheme.cache) == 0
            assert bench.scheme.cache.hits == 0
        assert caching_enabled()

    def test_encoding_memo_matches_uncached_bytes(self):
        # The per-object canonical-encoding memo must be byte-identical
        # to a from-scratch encoding — signatures depend on it.
        bench = SignedWorkbench(4)
        message = bench.coordinator_current()
        memoized = canonical_bytes(message)
        assert canonical_bytes(message) == memoized  # second read: memo
        with caching_disabled():
            fresh = canonical_bytes(
                dataclasses.replace(message)  # a memo-free twin
            )
        assert fresh == memoized


class TestPredicateCache:
    def test_clean_verdict_cached_per_envelope(self):
        bench = SignedWorkbench(4)
        cache = PredicateCache()
        message = bench.coordinator_current()
        assert current_message_problems(
            message, bench.params, bench.verify, cache=cache
        ) == []
        assert cache.misses >= 1
        before_hits = cache.hits
        assert current_message_problems(
            message, bench.params, bench.verify, cache=cache
        ) == []
        assert cache.hits == before_hits + 1

    def test_problems_are_never_cached(self):
        bench = SignedWorkbench(4)
        cache = PredicateCache()
        bad = bench.authorities[1].make(
            VCurrent(sender=1, round=1, est_vect=bench.vector_for([0, 1, 2])),
            Certificate((bench.signed_init(0),)),  # not a valid relay cert
        )
        first = current_message_problems(
            bench.authorities[0].make(
                VCurrent(sender=0, round=0, est_vect=()),
            ),
            bench.params,
            bench.verify,
            cache=cache,
        )
        assert first  # invalid round + vector shape
        problems = current_message_problems(
            bad, bench.params, bench.verify, cache=cache
        )
        assert problems
        # Re-analysis reports the same problems — nothing dirty was
        # recorded as clean.
        assert current_message_problems(
            bad, bench.params, bench.verify, cache=cache
        ) == problems

    def test_forged_current_never_rides_a_warm_cache(self):
        bench = SignedWorkbench(4)
        cache = PredicateCache()
        good = bench.coordinator_current()
        assert current_message_problems(
            good, bench.params, bench.verify, cache=cache
        ) == []
        # Same shape, tampered vector: a different envelope digest, so
        # the warm cache cannot answer for it.
        forged = bench.authorities[good.body.sender].make(
            dataclasses.replace(good.body, est_vect=("evil",) * bench.n),
            good.cert,
        )
        assert current_message_problems(
            forged, bench.params, bench.verify, cache=cache
        )

    def test_decide_hit_skips_redundant_quorum_reverification(self):
        bench = SignedWorkbench(4)
        cache = PredicateCache()
        coordinator_msg = bench.coordinator_current()
        relays = [bench.relay_current(pid, coordinator_msg) for pid in (1, 2)]
        from repro.messages.consensus import VDecide

        decide = bench.authorities[1].make(
            VDecide(sender=1, est_vect=coordinator_msg.body.est_vect),
            Certificate((coordinator_msg, *relays)),
        )
        assert decide_message_problems(
            decide, bench.params, bench.verify, cache=cache
        ) == []
        hits_before = cache.hits
        assert decide_message_problems(
            decide, bench.params, bench.verify, cache=cache
        ) == []
        assert cache.hits == hits_before + 1


class TestCheckpointCertCache:
    def _certified_checkpoint(self, seed=12):
        # Drive a small service run until a checkpoint certifies, then
        # reuse the replica's own certified checkpoint + authority.
        system = build_service_system(
            ServiceConfig(
                n_clients=2,
                requests_per_client=4,
                checkpoint_interval=2,
                seed=seed,
            )
        )
        system.run(max_time=2_500.0)
        for replica in system.replicas:
            if replica.stable is not None:
                return replica.stable, replica._ckpt_authority, replica.params.f
        raise AssertionError("no certified checkpoint produced")

    def test_accepts_cached_and_forgeries_fall_through(self):
        cert, authority, f = self._certified_checkpoint()
        cache = CheckpointCertCache()
        assert certificate_valid(cert, authority, f, cache=cache)
        assert cache.misses == 1
        assert certificate_valid(cert, authority, f, cache=cache)
        assert cache.hits == 1
        # A forged digest is a different key: warm cache, real rejection.
        forged = dataclasses.replace(cert, digest="00" * 32)
        assert not certificate_valid(forged, authority, f, cache=cache)
        assert not certificate_valid(forged, authority, f, cache=cache)
        # Rejects are never cached: both forged checks were real misses.
        assert cache.hits == 1


class TestWarmCacheStateTransfer:
    def test_forged_suffix_counted_with_warm_caches(self):
        replica = make_replica(seed=10)
        vect = (NULL,) * replica.config.n_replicas
        honest = justification(replica.config, 0, vect)
        # Warm every cache with the honest entry first.
        assert replica._suffix_entry_valid(0, vect, honest)
        response = StateResponse(
            replica=1,
            count=0,
            snapshot=(),
            executed=(),
            store_applied=0,
            certificate=None,
            suffix=(
                (0, vect, honest),
                (1, vect, justification(replica.config, 1, vect, domain_slot=7)),
                (2, vect, justification(replica.config, 2, vect, with_cert=False)),
            ),
        )
        replica._on_state_response(response)
        assert replica.next_apply == 1
        assert replica.suffix_rejections == 2


class TestPerfSmoke:
    def test_record_is_deterministic_and_ok(self):
        from repro.analysis.perf import smoke_json, smoke_ok, smoke_record

        first = smoke_record()
        assert smoke_ok(first)
        assert smoke_json(first) == smoke_json(smoke_record())

    def test_cli_perf_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "perf.json"
        assert main(["perf", "smoke", "--out", str(out)]) == 0
        import json

        record = json.loads(out.read_text())
        assert record["suite"] == "perf-smoke"
        assert record["equivalence"]["equivalent"]
        assert "ok" in capsys.readouterr().err
