"""Property tests: the adversary zoo's determinism contracts.

Hypothesis sweeps over the contracts docs/ADVERSARIES.md promises and
every fidelity runner depends on:

* **Suppression streams** (family a) are a pure fork derivation off the
  plan seed: the set for ``(clause, src, round)`` is identical across
  suppressor instances and *independent* of query order — one link's
  draws never consume another's randomness (the same contract PR 8
  pinned for the link injector).
* **Burst shaping** (family c) is deterministic and per-link FIFO:
  :func:`burst_hold` is pure, and :class:`BurstShaper` never releases
  two messages on one directed link closer than the FIFO spacing.
* **Corruption streams** (families b, d) are per-(family, pid) forks:
  same coordinates, same garbage; different coordinates, different
  streams.
* **Schema compat**: a zoo-free plan keeps its v1 canonical form (tag,
  config keys, plan_id) and every plan round-trips through
  ``to_config``/``from_config`` unchanged; readers accept v1 and v2
  documents and reject anything newer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults.plan import (
    FAULTS_SCHEMA,
    FAULTS_SCHEMA_V1,
    FaultPlan,
    check_faults_schema,
)
from repro.zoo.corruption import corruption_rng
from repro.zoo.families import FAMILY_STATE_CORRUPTION, FAMILY_STORAGE_FLIP
from repro.zoo.suppressor import RoundSuppressor
from repro.zoo.timing import BURST_FIFO_SPACING, BurstShaper, burst_hold

# -- strategies --------------------------------------------------------------

seeds = st.integers(0, 2**32 - 1)
pids = st.integers(0, 3)
plan_times = st.floats(0.0, 20.0, allow_nan=False).map(lambda x: round(x, 3))

suppression_clauses = st.lists(
    st.tuples(
        st.integers(1, 3),  # d
        st.floats(0.1, 2.0, allow_nan=False).map(lambda x: round(x, 3)),
        plan_times,
        plan_times,
    ),
    min_size=1,
    max_size=3,
).map(tuple)

timing_clauses = st.lists(
    st.tuples(
        pids,
        plan_times,
        plan_times,
        st.floats(0.5, 5.0, allow_nan=False).map(lambda x: round(x, 3)),
    ),
    max_size=2,
).map(tuple)


def suppression_plan(seed: int, clauses) -> FaultPlan:
    return FaultPlan(
        name="prop-suppress", seed=seed, suppressions=clauses
    )


# -- family (a): suppression streams -----------------------------------------


class TestSuppressionStreams:
    @given(seeds, suppression_clauses, pids, st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_across_instances(
        self, seed, clauses, src, round_index
    ):
        plan = suppression_plan(seed, clauses)
        a = RoundSuppressor(plan)
        b = RoundSuppressor(plan)
        for clause in range(len(clauses)):
            assert a.suppression_set(clause, src, round_index) == (
                b.suppression_set(clause, src, round_index)
            )

    @given(seeds, suppression_clauses)
    @settings(max_examples=50, deadline=None)
    def test_independent_of_query_order(self, seed, clauses):
        plan = suppression_plan(seed, clauses)
        keys = [
            (clause, src, round_index)
            for clause in range(len(clauses))
            for src in range(plan.n_replicas)
            for round_index in range(3)
        ]
        forward = RoundSuppressor(plan)
        backward = RoundSuppressor(plan)
        asked_forward = {
            key: forward.suppression_set(*key) for key in keys
        }
        asked_backward = {
            key: backward.suppression_set(*key) for key in reversed(keys)
        }
        assert asked_forward == asked_backward

    @given(seeds, suppression_clauses, pids, st.integers(0, 7))
    @settings(max_examples=50, deadline=None)
    def test_set_has_size_d_and_excludes_the_sender(
        self, seed, clauses, src, round_index
    ):
        plan = suppression_plan(seed, clauses)
        suppressor = RoundSuppressor(plan)
        for clause, (d, _rl, _start, _end) in enumerate(clauses):
            chosen = suppressor.suppression_set(clause, src, round_index)
            assert len(chosen) == min(d, plan.n_replicas - 1)
            assert src not in chosen

    @given(seeds, suppression_clauses, pids, pids, plan_times)
    @settings(max_examples=50, deadline=None)
    def test_suppression_respects_windows(self, seed, clauses, src, dst, now):
        plan = suppression_plan(seed, clauses)
        suppressor = RoundSuppressor(plan)
        inside_any = any(
            start <= now < end for _d, _rl, start, end in clauses
        )
        if src == dst or not inside_any:
            assert not suppressor.suppressed(now, src, dst)

    @given(seeds, suppression_clauses)
    @settings(max_examples=30, deadline=None)
    def test_distinct_seeds_may_disagree_but_each_is_stable(
        self, seed, clauses
    ):
        plan = suppression_plan(seed, clauses)
        again = suppression_plan(seed, clauses)
        a, b = RoundSuppressor(plan), RoundSuppressor(again)
        for now in (0.0, 1.0, 5.0, 10.0):
            for src in range(4):
                for dst in range(4):
                    assert a.suppressed(now, src, dst) == (
                        b.suppressed(now, src, dst)
                    )


# -- family (c): burst shaping -----------------------------------------------


class TestBurstShaping:
    @given(timing_clauses, pids, plan_times)
    @settings(max_examples=100, deadline=None)
    def test_burst_hold_is_pure(self, timing, src, now):
        assert burst_hold(timing, src, now) == burst_hold(timing, src, now)
        assert burst_hold(timing, src, now) >= 0.0

    @given(timing_clauses, pids, plan_times)
    @settings(max_examples=100, deadline=None)
    def test_hold_never_exceeds_the_largest_gap(self, timing, src, now):
        ceiling = max((gap for _p, _s, _e, gap in timing), default=0.0)
        assert burst_hold(timing, src, now) <= ceiling

    @given(
        timing_clauses,
        pids,
        pids,
        st.lists(plan_times, min_size=2, max_size=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_shaper_keeps_per_link_fifo(self, timing, src, dst, sends):
        shaper = BurstShaper(timing)
        ordered = sorted(sends)
        releases = [now + shaper.hold(src, dst, now) for now in ordered]
        # Release order never inverts send order on a directed link…
        for earlier, later in zip(releases, releases[1:]):
            assert later >= earlier
        # …and two *held* releases keep the full FIFO spacing, so
        # post-hold latency jitter below it cannot reorder the stream.
        held = [
            release
            for send, release in zip(ordered, releases)
            if release > send
        ]
        for r1, r2 in zip(held, held[1:]):
            assert r2 - r1 >= BURST_FIFO_SPACING - 1e-9

    @given(timing_clauses, pids, pids, st.lists(plan_times, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_shaper_is_deterministic(self, timing, src, dst, sends):
        a, b = BurstShaper(timing), BurstShaper(timing)
        for now in sorted(sends):
            assert a.hold(src, dst, now) == b.hold(src, dst, now)

    @given(pids, pids, st.lists(plan_times, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_no_timing_clauses_means_no_hold(self, src, dst, sends):
        shaper = BurstShaper(())
        for now in sorted(sends):
            assert shaper.hold(src, dst, now) == 0.0


# -- families (b, d): corruption streams -------------------------------------


class TestCorruptionStreams:
    @given(seeds, pids)
    @settings(max_examples=50, deadline=None)
    def test_same_coordinates_same_stream(self, seed, pid):
        plan = FaultPlan(name="prop-corrupt", seed=seed)
        draws_a = [
            corruption_rng(plan, FAMILY_STATE_CORRUPTION, pid).randint(0, 2**31)
            for _ in range(1)
        ]
        draws_b = [
            corruption_rng(plan, FAMILY_STATE_CORRUPTION, pid).randint(0, 2**31)
            for _ in range(1)
        ]
        assert draws_a == draws_b

    @given(seeds, pids)
    @settings(max_examples=50, deadline=None)
    def test_families_draw_independent_streams(self, seed, pid):
        plan = FaultPlan(name="prop-corrupt", seed=seed)
        state = corruption_rng(plan, FAMILY_STATE_CORRUPTION, pid)
        storage = corruption_rng(plan, FAMILY_STORAGE_FLIP, pid)
        # Distinct forks: four matching 31-bit draws (p ≈ 2^-124) would
        # mean the family streams share randomness.
        a = [state.randint(0, 2**31) for _ in range(4)]
        b = [storage.randint(0, 2**31) for _ in range(4)]
        assert a != b


# -- schema compat -----------------------------------------------------------


zoo_free_plans = st.builds(
    FaultPlan,
    name=st.just("prop-v1"),
    seed=seeds,
    requests=st.integers(1, 32),
    duration=st.floats(1.0, 20.0, allow_nan=False).map(lambda x: round(x, 2)),
    loss=st.floats(0.0, 0.2, allow_nan=False).map(lambda x: round(x, 3)),
    mutes=st.lists(
        st.tuples(pids, plan_times), max_size=2, unique_by=lambda m: m[0]
    ).map(lambda m: tuple(sorted(m))),
)


class TestSchemaCompat:
    @given(zoo_free_plans)
    @settings(max_examples=50, deadline=None)
    def test_zoo_free_plans_keep_the_v1_form(self, plan):
        assert plan.schema_tag == FAULTS_SCHEMA_V1
        config = plan.to_config()
        for key in ("suppressions", "corruptions", "timing", "storage_flips"):
            assert key not in config
        assert FaultPlan.from_config(config) == plan
        assert FaultPlan.from_config(config).plan_id == plan.plan_id

    @given(zoo_free_plans, suppression_clauses)
    @settings(max_examples=50, deadline=None)
    def test_zoo_plans_round_trip_under_v2(self, base, clauses):
        import dataclasses

        plan = dataclasses.replace(base, suppressions=clauses)
        assert plan.schema_tag == FAULTS_SCHEMA
        rebuilt = FaultPlan.from_config(plan.to_config())
        # from_config canonicalises clause order; identity holds from
        # the canonical form onward.
        canonical = FaultPlan.from_config(rebuilt.to_config())
        assert canonical == rebuilt
        assert rebuilt.suppressions == tuple(sorted(clauses))

    def test_readers_accept_v1_and_v2_and_reject_newer(self):
        check_faults_schema(FAULTS_SCHEMA_V1)
        check_faults_schema(FAULTS_SCHEMA)
        with pytest.raises(ConfigurationError):
            check_faults_schema("repro.faults/v3")
        with pytest.raises(ConfigurationError):
            check_faults_schema("bogus/v1")

    def test_v1_document_loads_and_keeps_its_identity(self, tmp_path):
        plan = FaultPlan(name="v1-doc", seed=7, mutes=((1, 2.0),))
        path = plan.save(tmp_path / "plan.json")
        assert '"repro.faults/v1"' in path.read_text()
        assert FaultPlan.load(path) == plan

    def test_v2_document_declares_the_zoo_schema(self, tmp_path):
        plan = FaultPlan(
            name="v2-doc", seed=7, suppressions=((1, 0.5, 2.0, 4.0),)
        )
        path = plan.save(tmp_path / "plan.json")
        assert '"repro.faults/v2"' in path.read_text()
        assert FaultPlan.load(path) == plan
