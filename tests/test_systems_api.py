"""Unit tests: system builders and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro.core.modules import ModuleConfig
from repro.core.transformer import TransformationBlueprint
from repro.errors import ConfigurationError
from repro.systems import build_crash_system, build_transformed_system


def proposals(n):
    return [f"v{i}" for i in range(n)]


class TestBuildCrashSystem:
    def test_basic_construction(self):
        system = build_crash_system(proposals(5))
        assert system.n == 5
        assert system.correct_pids == frozenset(range(5))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            build_crash_system(proposals(3), protocol="paxos")

    def test_crash_and_byzantine_overlap_rejected(self):
        from repro.byzantine import crash_attack

        with pytest.raises(ConfigurationError):
            build_crash_system(
                proposals(5), crash_at={1: 0.0}, byzantine=crash_attack(1, "mute")
            )

    def test_correct_pids_excludes_faulty(self):
        from repro.byzantine import crash_attack

        system = build_crash_system(
            proposals(5), crash_at={0: 1.0}, byzantine=crash_attack(2, "mute")
        )
        assert system.correct_pids == frozenset({1, 3, 4})

    def test_deterministic_replay(self):
        def run(seed):
            system = build_crash_system(proposals(5), crash_at={1: 2.0}, seed=seed)
            system.run()
            return (
                system.decisions(),
                system.world.network.messages_sent,
                system.world.scheduler.now,
            )

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestBuildTransformedSystem:
    def test_default_f_is_bound(self):
        system = build_transformed_system(proposals(7))
        assert system.params.f == 2

    def test_explicit_f(self):
        system = build_transformed_system(proposals(7), f=1)
        assert system.params.f == 1
        assert system.params.quorum == 6

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            build_transformed_system(proposals(4), crash_at={0: 1.0, 1: 1.0})

    def test_unknown_muteness_flavor_rejected(self):
        with pytest.raises(ConfigurationError):
            build_transformed_system(proposals(4), muteness="psychic")

    def test_config_threaded_to_processes(self):
        config = ModuleConfig.full().without("ledger")
        system = build_transformed_system(proposals(4), config=config)
        assert all(p.monitor_bank.ledger is None for p in system.processes)

    def test_deterministic_replay(self):
        def run(seed):
            system = build_transformed_system(proposals(4), seed=seed)
            system.run()
            return system.decisions(), system.world.scheduler.now

        assert run(7) == run(7)

    def test_run_result_recorded(self):
        system = build_transformed_system(proposals(4))
        assert system.result is None
        result = system.run()
        assert system.result is result

    def test_all_correct_decided_helper(self):
        system = build_transformed_system(proposals(4))
        assert not system.all_correct_decided()
        system.run()
        assert system.all_correct_decided()


class TestTransformationBlueprint:
    def test_blueprint_builds_working_processes(self):
        """The generic blueprint assembles the same system the convenience
        builder does (the methodology API is not a facade)."""
        from repro.consensus.transformed import TransformedConsensusProcess
        from repro.core.specs import SystemParameters
        from repro.crypto.keys import KeyAuthority
        from repro.crypto.signatures import SignatureScheme
        from repro.detectors.oracles import OracleDetector
        from repro.sim.world import World

        n = 4
        params = SystemParameters.for_n(n)
        keys = KeyAuthority(n, seed=0)
        blueprint = TransformationBlueprint(
            params=params,
            scheme=SignatureScheme(keys),
            key_authority=keys,
            muteness_factory=lambda pid: OracleDetector(status=lambda _p: False),
            protocol_factory=lambda pid, prop, auth, det, cfg: (
                TransformedConsensusProcess(
                    proposal=prop,
                    params=params,
                    authority=auth,
                    detector=det,
                    config=cfg,
                )
            ),
        )
        processes = blueprint.build_all(proposals(n))
        world = World(processes, seed=0)
        world.run(max_time=2_000)
        assert all(p.decided for p in processes)
        decided = {p.decision for p in processes}
        assert len(decided) == 1

    def test_blueprint_default_config_is_full(self):
        from repro.core.specs import SystemParameters
        from repro.crypto.keys import KeyAuthority
        from repro.crypto.signatures import SignatureScheme

        keys = KeyAuthority(2, seed=0)
        blueprint = TransformationBlueprint(
            params=SystemParameters.for_n(4),
            scheme=SignatureScheme(keys),
            key_authority=keys,
            muteness_factory=lambda pid: None,  # type: ignore[arg-type]
            protocol_factory=lambda *a: None,  # type: ignore[arg-type,return-value]
        )
        assert blueprint.config == ModuleConfig.full()


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_from_docstring(self):
        system = repro.build_transformed_system(
            ["a", "b", "c", "d"],
            byzantine=repro.transformed_attack(3, "corrupt-vector"),
            seed=1,
        )
        system.run()
        assert system.decisions()
        assert 3 in system.processes[0].faulty


class TestHeartbeatCrashSystems:
    def test_heartbeat_fd_end_to_end(self):
        """A fully oracle-free crash-model run: adaptive heartbeat ◇S."""
        from repro.analysis.properties import check_crash_consensus
        from repro.detectors.heartbeat import HeartbeatDetector

        system = build_crash_system(
            proposals(5), crash_at={0: 0.5}, fd="heartbeat", seed=4
        )
        assert all(
            isinstance(p.detector, HeartbeatDetector) for p in system.processes
        )
        system.run(max_time=3_000)
        report = check_crash_consensus(system)
        assert report.all_hold, report.violations

    def test_heartbeat_fd_chandra_toueg(self):
        from repro.analysis.properties import check_crash_consensus

        system = build_crash_system(
            proposals(5),
            crash_at={0: 0.5},
            protocol="chandra-toueg",
            fd="heartbeat",
            seed=4,
        )
        system.run(max_time=3_000)
        assert check_crash_consensus(system).all_hold

    def test_unknown_fd_rejected(self):
        with pytest.raises(ConfigurationError):
            build_crash_system(proposals(3), fd="tarot")
