"""Unit tests: the PF well-formedness predicates of Section 5.1."""

from __future__ import annotations

import pytest

from repro.consensus.certification import (
    current_message_problems,
    decide_message_problems,
    est_cert_problems,
    init_message_problems,
    next_message_problems,
    next_set_problems,
)
from repro.core.certificates import Certificate, EMPTY_CERTIFICATE
from repro.messages.consensus import VCurrent, VDecide, VNext
from tests.helpers import SignedWorkbench


@pytest.fixture
def bench():
    return SignedWorkbench(4)


class TestInitPredicate:
    def test_empty_cert_accepted(self, bench):
        message = bench.signed_init(0)
        assert init_message_problems(message, bench.params, bench.verify) == []

    def test_nonempty_cert_rejected(self, bench):
        from repro.messages.consensus import Init

        loaded = bench.authorities[0].make(
            Init(sender=0, value="x"),
            Certificate((bench.signed_init(1),)),
        )
        problems = init_message_problems(loaded, bench.params, bench.verify)
        assert problems and "empty certificate" in problems[0]


class TestEstCertPredicate:
    def test_initial_form_accepted(self, bench):
        senders = [0, 1, 2]
        cert = Certificate(tuple(bench.init_quorum(senders)))
        vector = bench.vector_for(senders)
        assert est_cert_problems(cert, vector, bench.params, bench.verify) == []

    def test_relay_form_accepted(self, bench):
        coordinator_msg = bench.coordinator_current()
        cert = Certificate((coordinator_msg,))
        vector = coordinator_msg.body.est_vect
        assert est_cert_problems(cert, vector, bench.params, bench.verify) == []

    def test_relay_form_vector_mismatch_rejected(self, bench):
        coordinator_msg = bench.coordinator_current()
        cert = Certificate((coordinator_msg,))
        other = bench.vector_for([1, 2, 3])
        problems = est_cert_problems(cert, other, bench.params, bench.verify)
        assert problems

    def test_pruned_inner_cert_rejected(self, bench):
        coordinator_msg = bench.coordinator_current().light()
        cert = Certificate((coordinator_msg,))
        vector = coordinator_msg.body.est_vect
        problems = est_cert_problems(cert, vector, bench.params, bench.verify)
        assert any("pruned" in p for p in problems)

    def test_empty_cert_rejected(self, bench):
        vector = bench.vector_for([0, 1, 2])
        problems = est_cert_problems(
            EMPTY_CERTIFICATE, vector, bench.params, bench.verify
        )
        assert problems


class TestNextSetPredicate:
    def test_round_one_needs_empty_set(self, bench):
        assert next_set_problems([], 0, bench.params, bench.verify) == []
        problems = next_set_problems(
            bench.next_quorum(1), 0, bench.params, bench.verify
        )
        assert problems

    def test_full_quorum_accepted(self, bench):
        votes = bench.next_quorum(2)
        assert next_set_problems(votes, 2, bench.params, bench.verify) == []

    def test_short_quorum_rejected(self, bench):
        votes = bench.next_quorum(2)[:1]
        problems = next_set_problems(votes, 2, bench.params, bench.verify)
        assert any("needs n-F" in p for p in problems)

    def test_wrong_round_votes_rejected(self, bench):
        votes = bench.next_quorum(2)
        problems = next_set_problems(votes, 3, bench.params, bench.verify)
        assert any("refers to round" in p for p in problems)

    def test_light_votes_verify(self, bench):
        """NEXT entries travel pruned; their signature must still check."""
        votes = bench.next_quorum(5)
        assert all(not v.has_full_cert for v in votes)
        assert next_set_problems(votes, 5, bench.params, bench.verify) == []


class TestCurrentPredicate:
    def test_round1_coordinator_accepted(self, bench):
        message = bench.coordinator_current()
        assert current_message_problems(message, bench.params, bench.verify) == []

    def test_round2_coordinator_needs_next_quorum(self, bench):
        message = bench.coordinator_current(
            round_number=2, next_votes=bench.next_quorum(1)
        )
        assert current_message_problems(message, bench.params, bench.verify) == []

    def test_round2_without_next_votes_rejected(self, bench):
        message = bench.coordinator_current(round_number=2)
        problems = current_message_problems(message, bench.params, bench.verify)
        assert any("next_cert" in p for p in problems)

    def test_corrupted_vector_rejected(self, bench):
        honest = bench.coordinator_current()
        corrupted_body = honest.body.replace(
            est_vect=tuple("poison" for _ in range(bench.n))
        )
        coordinator = honest.body.sender
        message = bench.authorities[coordinator].make(
            corrupted_body, honest.full_cert()
        )
        problems = current_message_problems(message, bench.params, bench.verify)
        assert problems

    def test_relay_accepted(self, bench):
        inner = bench.coordinator_current()
        relay = bench.relay_current(2, inner)
        assert current_message_problems(relay, bench.params, bench.verify) == []

    def test_relay_of_relay_accepted(self, bench):
        inner = bench.coordinator_current()
        relay = bench.relay_current(2, inner)
        deep = bench.relay_current(3, relay)
        assert current_message_problems(deep, bench.params, bench.verify) == []

    def test_relay_with_corrupted_vector_rejected(self, bench):
        inner = bench.coordinator_current()
        body = VCurrent(
            sender=2, round=1, est_vect=tuple("poison" for _ in range(bench.n))
        )
        relay = bench.authorities[2].make(body, Certificate((inner,)))
        problems = current_message_problems(relay, bench.params, bench.verify)
        assert any("corrupted est_vect" in p for p in problems)

    def test_relay_with_empty_cert_rejected(self, bench):
        body = VCurrent(sender=2, round=1, est_vect=bench.vector_for([0, 1, 2]))
        relay = bench.authorities[2].make(body, EMPTY_CERTIFICATE)
        problems = current_message_problems(relay, bench.params, bench.verify)
        assert any("exactly one signed CURRENT" in p for p in problems)

    def test_self_certified_relay_rejected(self, bench):
        inner = bench.coordinator_current()
        assert inner.body.sender == 0
        body = VCurrent(sender=0, round=1, est_vect=inner.body.est_vect)
        # A message certified by its own sender's CURRENT: only reachable
        # by a faulty process (the coordinator re-relaying itself).
        self_relay = bench.authorities[0].make(body, Certificate((inner,)))
        # sender == coordinator, so this parses as (a broken) coordinator form
        problems = current_message_problems(self_relay, bench.params, bench.verify)
        assert problems

    def test_future_evidence_rejected(self, bench):
        # Coordinator CURRENT for round 2 embedding NEXT votes of round 2
        # (the round it is starting — impossible honestly).
        message = bench.coordinator_current(
            round_number=2, next_votes=bench.next_quorum(2)
        )
        problems = current_message_problems(message, bench.params, bench.verify)
        assert any("future" in p for p in problems)

    def test_wrong_round_zero_rejected(self, bench):
        body = VCurrent(sender=0, round=0, est_vect=bench.vector_for([0, 1, 2]))
        message = bench.authorities[0].make(
            body, Certificate(tuple(bench.init_quorum([0, 1, 2])))
        )
        problems = current_message_problems(message, bench.params, bench.verify)
        assert any("invalid round" in p for p in problems)

    def test_short_vector_rejected(self, bench):
        body = VCurrent(sender=0, round=1, est_vect=("a",))
        message = bench.authorities[0].make(
            body, Certificate(tuple(bench.init_quorum([0, 1, 2])))
        )
        problems = current_message_problems(message, bench.params, bench.verify)
        assert any("length" in p for p in problems)


class TestNextPredicate:
    def _next(self, bench, sender, round_number, cert):
        return bench.authorities[sender].make(
            VNext(sender=sender, round=round_number), cert
        )

    def test_suspicion_shape_accepted(self, bench):
        # q0 -> q2: est_cert (INITs) + no CURRENTs.
        cert = Certificate(tuple(bench.init_quorum([0, 1, 2])))
        message = self._next(bench, 3, 1, cert)
        assert next_message_problems(message, bench.params, bench.verify) == []

    def test_change_mind_shape_accepted(self, bench):
        current = bench.coordinator_current()
        nexts = bench.next_quorum(1)[1:3]  # two NEXT votes
        cert = Certificate((current, *nexts))
        message = self._next(bench, 3, 1, cert)
        assert next_message_problems(message, bench.params, bench.verify) == []

    def test_round_end_shape_accepted(self, bench):
        cert = Certificate(tuple(bench.next_quorum(2)))
        message = self._next(bench, 3, 2, cert)
        assert next_message_problems(message, bench.params, bench.verify) == []

    def test_change_mind_without_quorum_rejected(self, bench):
        current = bench.coordinator_current()
        cert = Certificate((current,))  # one vote, quorum is 3
        message = self._next(bench, 3, 1, cert)
        problems = next_message_problems(message, bench.params, bench.verify)
        assert any("misevaluated" in p for p in problems)

    def test_future_evidence_rejected(self, bench):
        cert = Certificate(tuple(bench.next_quorum(5)))
        message = self._next(bench, 3, 2, cert)
        problems = next_message_problems(message, bench.params, bench.verify)
        assert any("future" in p for p in problems)

    def test_residue_of_earlier_round_tolerated(self, bench):
        # est_cert residue: INITs plus NEXTs of an earlier round, unioned
        # into the q0->q2 certificate — must not trip the analyser.
        cert = Certificate(
            tuple(bench.init_quorum([0, 1, 2])) + tuple(bench.next_quorum(1))
        )
        message = self._next(bench, 3, 2, cert)
        assert next_message_problems(message, bench.params, bench.verify) == []


class TestDecidePredicate:
    def _decide_cert(self, bench):
        coordinator_msg = bench.coordinator_current()
        relays = [bench.relay_current(pid, coordinator_msg) for pid in (1, 2)]
        return coordinator_msg, Certificate((coordinator_msg, *relays))

    def test_full_quorum_accepted(self, bench):
        coordinator_msg, cert = self._decide_cert(bench)
        message = bench.authorities[1].make(
            VDecide(sender=1, est_vect=coordinator_msg.body.est_vect), cert
        )
        assert decide_message_problems(message, bench.params, bench.verify) == []

    def test_sub_quorum_rejected(self, bench):
        coordinator_msg = bench.coordinator_current()
        cert = Certificate((coordinator_msg,))
        message = bench.authorities[1].make(
            VDecide(sender=1, est_vect=coordinator_msg.body.est_vect), cert
        )
        problems = decide_message_problems(message, bench.params, bench.verify)
        assert any("misevaluated its decision" in p for p in problems)

    def test_vector_mismatch_rejected(self, bench):
        _coordinator_msg, cert = self._decide_cert(bench)
        message = bench.authorities[1].make(
            VDecide(sender=1, est_vect=bench.vector_for([1, 2, 3])), cert
        )
        problems = decide_message_problems(message, bench.params, bench.verify)
        assert problems

    def test_empty_cert_rejected(self, bench):
        message = bench.authorities[1].make(
            VDecide(sender=1, est_vect=bench.vector_for([0, 1, 2])),
            EMPTY_CERTIFICATE,
        )
        problems = decide_message_problems(message, bench.params, bench.verify)
        assert problems

    def test_relayed_decide_keeps_validity(self, bench):
        """A DECIDE relayed with the original certificate verifies for the
        relayer too (the predicate is sender-independent)."""
        coordinator_msg, cert = self._decide_cert(bench)
        relayed = bench.authorities[3].make(
            VDecide(sender=3, est_vect=coordinator_msg.body.est_vect), cert
        )
        assert decide_message_problems(relayed, bench.params, bench.verify) == []
