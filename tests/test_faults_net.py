"""Tests: the subprocess fidelity of the fault campaign (docs/FAULTS.md).

Two regressions against real OS processes: the orphan-process guard —
``LocalCluster.terminate_all`` must SIGCONT a replica left SIGSTOPped
by a muteness scenario before the SIGTERM, or the frozen process
outlives the supervisor and is SIGKILLed only at the deadline — and one
short fault plan executed end-to-end at fidelity 3 (SIGSTOP muteness on
a real four-process TCP cluster) reaching the same ``pass`` verdict the
deterministic fidelities reach for it.
"""

from __future__ import annotations

import asyncio
import time

from repro.faults import FaultPlan, judge, run_loopback_plan, run_sim_plan
from repro.faults.net_runner import run_net_plan
from repro.net.client import NetClient
from repro.net.cluster import LocalCluster, make_genesis, wait_cluster_ready

#: One short plan shared by the whole module: replica 1 goes mute at
#: t=2 (SIGSTOP at fidelity 3) and the other three finish the workload.
MUTE_PLAN = FaultPlan(
    name="net-mute",
    seed=31,
    requests=8,
    duration=6.0,
    mutes=((1, 2.0),),
)


class TestOrphanGuard:
    def test_terminate_all_reaps_a_sigstopped_replica(self, tmp_path):
        async def scenario():
            genesis = make_genesis(4, seed=41, name="orphan")
            cluster = LocalCluster(genesis, tmp_path)
            client = NetClient(genesis, 0)
            try:
                cluster.start_all()
                await wait_cluster_ready(client, timeout=30.0)
                cluster.stop(1)  # the muteness fault: frozen, not dead
            finally:
                await client.close()
            started = time.monotonic()
            codes = cluster.terminate_all(timeout=10.0)
            elapsed = time.monotonic() - started
            return codes, elapsed

        codes, elapsed = asyncio.run(scenario())
        # The guard SIGCONTs before SIGTERM, so the frozen replica runs
        # its graceful shutdown (exit 0). Without it, SIGTERM is queued
        # behind the freeze: the replica burns the whole deadline and is
        # SIGKILLed (-9) — the orphan this test pins down.
        assert codes[1] == 0, codes
        assert all(code == 0 for code in codes.values()), codes
        assert elapsed < 8.0, f"teardown took {elapsed:.1f}s"

    def test_kill_thaws_a_sigstopped_replica_first(self, tmp_path):
        async def scenario():
            genesis = make_genesis(4, seed=42, name="thaw")
            cluster = LocalCluster(genesis, tmp_path)
            client = NetClient(genesis, 0)
            try:
                cluster.start_all()
                await wait_cluster_ready(client, timeout=30.0)
                cluster.stop(2)
                started = time.monotonic()
                cluster.kill(2)  # must SIGCONT first, then SIGKILL lands
                elapsed = time.monotonic() - started
            finally:
                await client.close()
                cluster.terminate_all(timeout=10.0)
            return elapsed

        elapsed = asyncio.run(scenario())
        assert elapsed < 5.0, f"kill of a stopped replica took {elapsed:.1f}s"


class TestNetFidelity:
    def test_mute_plan_verdict_matches_the_deterministic_fidelities(
        self, tmp_path
    ):
        observation = run_net_plan(
            MUTE_PLAN, workdir=tmp_path / "net", timeout=90.0
        )
        verdict, violations = judge(MUTE_PLAN, observation)
        assert verdict == "pass", (violations, observation.extras)
        assert not observation.extras.get("timed_out")
        # The SIGSTOPped replica is excused; the three live replicas all
        # executed the full workload and agree on the digest.
        assert observation.completed >= MUTE_PLAN.requests
        assert set(observation.digests) == {0, 2, 3}
        assert len(set(observation.digests.values())) == 1

        # The same plan, same verdict, at both deterministic fidelities —
        # the cross-fidelity contract for this scenario id.
        for run in (run_sim_plan, run_loopback_plan):
            twin_verdict, twin_violations = judge(MUTE_PLAN, run(MUTE_PLAN))
            assert twin_verdict == "pass", (run.__name__, twin_violations)
