"""Unit tests: adversarial scheduling tools (scripted delays/suspicions,
non-FIFO channels) used by the assumption-necessity experiments."""

from __future__ import annotations

from repro.detectors.oracles import ScriptedDetector
from repro.messages.consensus import Current, Next
from repro.sim.network import FixedDelay, ScriptedDelay
from repro.sim.process import Process
from repro.sim.rng import SeededRng
from repro.sim.world import World


class Recorder(Process):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.now, src, payload))


class TestScriptedDelay:
    def test_rules_match_in_order(self):
        model = ScriptedDelay(
            rules=[
                (lambda s, d, p: isinstance(p, Current), 9.0),
                (lambda s, d, p: s == 0, 5.0),
            ],
            default=1.0,
        )
        rng = SeededRng(0)
        current = Current(sender=0, round=1, est="v")
        nxt = Next(sender=0, round=1)
        assert model.sample_for(rng, 0, 1, current) == 9.0  # first rule wins
        assert model.sample_for(rng, 0, 1, nxt) == 5.0
        assert model.sample_for(rng, 2, 1, nxt) == 1.0

    def test_plain_sample_uses_default(self):
        model = ScriptedDelay(rules=[], default=2.5)
        assert model.sample(SeededRng(0), 0, 1) == 2.5

    def test_network_uses_payload_aware_sampling(self):
        model = ScriptedDelay(
            rules=[(lambda s, d, p: p == "slow", 10.0)], default=1.0
        )
        world = World([Recorder(), Recorder()], delay_model=model, fifo=False)
        world.network.send(0, 1, "slow")
        world.network.send(0, 1, "fast")
        world.run()
        order = [payload for (_t, _s, payload) in world.processes[1].received]
        assert order == ["fast", "slow"]


class TestNonFifoNetwork:
    def test_fifo_forbids_overtaking(self):
        model = ScriptedDelay(
            rules=[(lambda s, d, p: p == "first", 10.0)], default=1.0
        )
        world = World([Recorder(), Recorder()], delay_model=model, fifo=True)
        world.network.send(0, 1, "first")
        world.network.send(0, 1, "second")
        world.run()
        order = [payload for (_t, _s, payload) in world.processes[1].received]
        assert order == ["first", "second"]

    def test_non_fifo_allows_overtaking(self):
        model = ScriptedDelay(
            rules=[(lambda s, d, p: p == "first", 10.0)], default=1.0
        )
        world = World([Recorder(), Recorder()], delay_model=model, fifo=False)
        world.network.send(0, 1, "first")
        world.network.send(0, 1, "second")
        world.run()
        order = [payload for (_t, _s, payload) in world.processes[1].received]
        assert order == ["second", "first"]

    def test_non_fifo_still_reliable(self):
        world = World(
            [Recorder(), Recorder()], delay_model=FixedDelay(1.0), fifo=False
        )
        for i in range(20):
            world.network.send(0, 1, i)
        world.run()
        assert sorted(p for (_t, _s, p) in world.processes[1].received) == list(
            range(20)
        )


class TestScriptedDetector:
    def test_suspicion_windows(self):
        class Host(Process):
            def __init__(self, detector):
                super().__init__()
                self.detector = detector

            def bind(self, env):
                super().bind(env)
                self.detector.attach(env)

        detector = ScriptedDetector([(1, 2.0, 5.0), (2, 4.0, 6.0)])
        world = World([Host(detector), Recorder(), Recorder()])
        observations = {}

        def observe(at):
            world.scheduler.schedule_at(
                at, "observe", lambda: observations.update({at: detector.suspected})
            )

        for at in (1.0, 3.0, 4.5, 5.5, 7.0):
            observe(at)
        world.run()
        assert observations[1.0] == frozenset()
        assert observations[3.0] == frozenset({1})
        assert observations[4.5] == frozenset({1, 2})
        assert observations[5.5] == frozenset({2})
        assert observations[7.0] == frozenset()

    def test_unattached_detector_suspects_nobody(self):
        assert ScriptedDetector([(0, 0.0, 10.0)]).suspected == frozenset()
