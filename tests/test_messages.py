"""Unit tests: message bodies."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.messages.base import Message
from repro.messages.consensus import (
    NULL,
    Current,
    Decide,
    Init,
    Next,
    VCurrent,
    VDecide,
    VNext,
    empty_vector,
    vector_with,
)


class TestMessageBase:
    def test_type_name(self):
        assert Current(sender=0, round=1, est="x").type_name == "CURRENT"
        assert VNext(sender=0, round=1).type_name == "VNEXT"

    def test_canonical_lists_fields_in_order(self):
        body = Current(sender=2, round=3, est="v")
        assert body.canonical() == (("sender", 2), ("round", 3), ("est", "v"))

    def test_replace_produces_modified_copy(self):
        body = Next(sender=1, round=4)
        other = body.replace(round=5)
        assert other.round == 5
        assert body.round == 4

    def test_replace_invalid_field_rejected(self):
        with pytest.raises(ProtocolError):
            Next(sender=1, round=4).replace(nonsense=1)

    def test_bodies_are_frozen(self):
        body = Init(sender=0, value="x")
        with pytest.raises(AttributeError):
            body.value = "y"  # type: ignore[misc]

    def test_bodies_are_hashable_and_equal_by_value(self):
        assert Decide(sender=0, est="v") == Decide(sender=0, est="v")
        assert len({Decide(sender=0, est="v"), Decide(sender=0, est="v")}) == 1

    def test_all_bodies_carry_sender(self):
        for body in (
            Current(sender=3, round=1, est="x"),
            Next(sender=3, round=1),
            Decide(sender=3, est="x"),
            Init(sender=3, value="x"),
            VCurrent(sender=3, round=1, est_vect=("x",)),
            VNext(sender=3, round=1),
            VDecide(sender=3, est_vect=("x",)),
        ):
            assert isinstance(body, Message)
            assert body.sender == 3


class TestVectorHelpers:
    def test_empty_vector(self):
        assert empty_vector(3) == (NULL, NULL, NULL)

    def test_vector_with(self):
        base = empty_vector(3)
        updated = vector_with(base, 1, "v")
        assert updated == (NULL, "v", NULL)
        assert base == (NULL, NULL, NULL)

    def test_null_is_distinguishable_from_none(self):
        assert NULL is not None
        assert NULL != ""
