"""Unit and property tests: synchronous substrate + EIG Interactive Consistency."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.synchronous.eig import (
    DEFAULT,
    EigLiar,
    EigProcess,
    EigSilent,
    eig_rounds,
    run_interactive_consistency,
)
from repro.synchronous.rounds import SynchronousEngine, SyncProcess


class Echoer(SyncProcess):
    """Broadcasts its pid each round; records inboxes."""

    def __init__(self):
        super().__init__()
        self.history: list[dict] = []

    def on_round(self, round_number, inbox):
        self.history.append(dict(inbox))
        return {dst: ("hello", self.pid, round_number) for dst in range(self.n)}


class TestSynchronousEngine:
    def test_round_one_has_empty_inbox(self):
        engine = SynchronousEngine([Echoer(), Echoer()])
        engine.run(1)
        assert all(p.history[0] == {} for p in engine.processes)

    def test_messages_arrive_next_round(self):
        engine = SynchronousEngine([Echoer(), Echoer()])
        engine.run(2)
        second = engine.processes[0].history[1]
        assert second == {0: ("hello", 0, 1), 1: ("hello", 1, 1)}

    def test_crash_prefix_semantics(self):
        # p1 crashes in round 1 delivering only to the first destination.
        engine = SynchronousEngine(
            [Echoer(), Echoer(), Echoer()], crash_schedule={1: (1, 1)}
        )
        engine.run(2)
        assert 1 in engine.processes[0].history[1]  # dst 0 got the send
        assert 1 not in engine.processes[2].history[1]  # dst 2 did not

    def test_crashed_process_stays_silent(self):
        engine = SynchronousEngine(
            [Echoer(), Echoer()], crash_schedule={1: (1, 2)}
        )
        engine.run(3)
        assert 1 in engine.crashed
        assert 1 not in engine.processes[0].history[2]

    def test_empty_process_list_rejected(self):
        with pytest.raises(ConfigurationError):
            SynchronousEngine([])


class TestEigArithmetic:
    def test_rounds(self):
        assert eig_rounds(1) == 2
        assert eig_rounds(2) == 3

    def test_n_gt_3f_required(self):
        with pytest.raises(ConfigurationError):
            run_interactive_consistency(["a", "b", "c"], f=1)


class TestEigCorrectRuns:
    def test_failure_free_exact_vector(self):
        procs = run_interactive_consistency(["a", "b", "c", "d"])
        assert all(p.vector == ("a", "b", "c", "d") for p in procs)

    def test_agreement_and_validity_with_liar(self):
        procs = run_interactive_consistency(
            ["a", "b", "c", "d"], byzantine={3: EigLiar}, seed=4
        )
        vectors = {p.vector for i, p in enumerate(procs) if i != 3}
        assert len(vectors) == 1
        vector = vectors.pop()
        assert vector[:3] == ("a", "b", "c")

    def test_silent_byzantine_resolves_to_default(self):
        procs = run_interactive_consistency(
            ["a", "b", "c", "d"], byzantine={2: EigSilent}
        )
        vectors = {p.vector for i, p in enumerate(procs) if i != 2}
        assert len(vectors) == 1
        assert vectors.pop()[2] == DEFAULT

    def test_two_faults_at_n7(self):
        procs = run_interactive_consistency(
            [f"v{i}" for i in range(7)],
            byzantine={5: EigLiar, 6: EigLiar},
            seed=5,
        )
        vectors = {p.vector for i, p in enumerate(procs) if i < 5}
        assert len(vectors) == 1
        vector = vectors.pop()
        assert vector[:5] == tuple(f"v{i}" for i in range(5))

    def test_crash_mid_round_still_agrees(self):
        procs = run_interactive_consistency(
            ["a", "b", "c", "d"], crash_schedule={1: (1, 2)}, seed=6
        )
        vectors = {p.vector for i, p in enumerate(procs) if i != 1}
        assert len(vectors) == 1

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50_000),
        liar=st.integers(min_value=0, max_value=3),
    )
    def test_ic_properties_across_random_liars(self, seed, liar):
        """Agreement + Validity for every seat the liar takes."""
        values = ["a", "b", "c", "d"]
        procs = run_interactive_consistency(
            values, byzantine={liar: EigLiar}, seed=seed
        )
        vectors = {p.vector for i, p in enumerate(procs) if i != liar}
        assert len(vectors) == 1
        vector = vectors.pop()
        for pid in range(4):
            if pid != liar:
                assert vector[pid] == values[pid]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_n7_liar_and_silent_mix(self, seed):
        procs = run_interactive_consistency(
            [f"v{i}" for i in range(7)],
            byzantine={3: EigLiar, 6: EigSilent},
            seed=seed,
        )
        vectors = {p.vector for i, p in enumerate(procs) if i not in (3, 6)}
        assert len(vectors) == 1
        vector = vectors.pop()
        assert vector[6] == DEFAULT
        for pid in (0, 1, 2, 4, 5):
            assert vector[pid] == f"v{pid}"


class TestEigInternals:
    def test_tree_levels_grow_correctly(self):
        procs = run_interactive_consistency(["a", "b", "c", "d"])
        tree = procs[0].tree
        level1 = [label for label in tree if len(label) == 1]
        level2 = [label for label in tree if len(label) == 2]
        assert len(level1) == 4
        assert len(level2) == 4 * 3  # labels of distinct pids

    def test_garbage_reports_ignored(self):
        class Garbage(EigProcess):
            def on_round(self, round_number, inbox):
                self._absorb(round_number, inbox)
                return {dst: "not-a-dict" for dst in range(self.n)}

        procs = run_interactive_consistency(
            ["a", "b", "c", "d"], byzantine={3: Garbage}
        )
        vectors = {p.vector for i, p in enumerate(procs) if i != 3}
        assert len(vectors) == 1
        assert vectors.pop()[3] == DEFAULT

    def test_malformed_labels_ignored(self):
        class BadLabels(EigProcess):
            def on_round(self, round_number, inbox):
                self._absorb(round_number, inbox)
                return {
                    dst: {("x", "y"): "junk", (0, 0): "dup", (99,): "range"}
                    for dst in range(self.n)
                }

        procs = run_interactive_consistency(
            ["a", "b", "c", "d"], byzantine={3: BadLabels}
        )
        for i, p in enumerate(procs):
            if i != 3:
                assert all(
                    isinstance(label, tuple) and all(0 <= q < 4 for q in label)
                    for label in p.tree
                )


class TestDegenerateWorlds:
    """Regression: f=0 and single-process runs of EIG must terminate."""

    def test_single_process_world(self):
        (proc,) = run_interactive_consistency(["only"], f=0)
        assert proc.vector == ("only",)

    def test_f_zero_pair_exchanges_inputs(self):
        procs = run_interactive_consistency(["a", "b"], f=0)
        assert [p.vector for p in procs] == [("a", "b"), ("a", "b")]

    def test_f_zero_runs_exactly_one_round(self):
        assert eig_rounds(0) == 1
        procs = run_interactive_consistency(["a", "b", "c"], f=0)
        for proc in procs:
            # Level-1 labels only: nobody relays anyone else's reports.
            assert all(len(label) == 1 for label in proc.tree)
            assert proc.vector == ("a", "b", "c")

    def test_default_f_zero_for_tiny_n(self):
        # (n - 1) // 3 == 0 for n <= 3: the driver must not demand n > 3f
        # worlds it cannot build.
        procs = run_interactive_consistency(["x", "y", "z"])
        assert all(p.vector == ("x", "y", "z") for p in procs)


class TestDuplicateReports:
    """Regression: replayed or conflicting reports must not mutate the tree."""

    def test_absorbing_same_inbox_twice_is_idempotent(self):
        proc = EigProcess("a", f=1)
        proc.setup(pid=0, n=4, rng=None)
        inbox = {1: {(): "b"}, 2: {(): "c"}}
        proc._absorb(2, inbox)
        first = dict(proc.tree)
        proc._absorb(2, inbox)
        assert proc.tree == first

    def test_first_report_for_a_label_wins(self):
        # A two-faced reporter cannot overwrite a report already gathered:
        # setdefault semantics keep the first value for each label.
        proc = EigProcess("a", f=1)
        proc.setup(pid=0, n=4, rng=None)
        proc._absorb(2, {1: {(): "original"}})
        proc._absorb(2, {1: {(): "revised"}})
        assert proc.tree[(1,)] == "original"

    def test_resolution_unaffected_by_replay(self):
        procs = run_interactive_consistency(["a", "b", "c", "d"], f=1)
        target = procs[0]
        before = target.vector
        # Replay the final-round reports wholesale; the tree is full, so
        # nothing changes and re-resolving yields the same vector.
        level = {
            label: value for label, value in target.tree.items() if len(label) == 1
        }
        target._absorb(2, {3: level})
        assert target.finish() == before
