"""Tests: real OS-process cluster orchestration (repro.net.cluster).

The heavyweight test here is a scaled-down `make net-smoke`: four
replica subprocesses over real TCP, one SIGKILLed and restarted
mid-workload, convergence and exactly-once asserted from the verdict
record. The rest covers genesis generation and the operator-facing
guard rails without spawning anything.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys

import pytest

from repro.net.cluster import (
    ClusterError,
    LocalCluster,
    make_genesis,
    run_cluster_smoke,
)


class TestGenesisGeneration:
    def test_ports_are_distinct_and_document_validates(self):
        genesis = make_genesis(4, seed=31)
        ports = [port for _host, port in genesis.addresses]
        assert len(set(ports)) == 4
        genesis.validate()

    def test_overrides_flow_through(self):
        genesis = make_genesis(4, seed=31, window=3, name="custom")
        assert genesis.window == 3
        assert genesis.name == "custom"


class TestClusterGuards:
    def test_kill_requires_a_running_replica(self, tmp_path):
        cluster = LocalCluster(make_genesis(4, seed=32), tmp_path)
        with pytest.raises(ClusterError):
            cluster.kill(0)

    def test_replica_cli_rejects_bad_pid_with_exit_2(self, tmp_path):
        genesis_path = make_genesis(4, seed=33).save(tmp_path / "genesis.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "net", "replica",
                "--genesis", str(genesis_path), "--pid", "9",
            ],
            capture_output=True,
            text=True,
            timeout=30,
            env=env,
        )
        assert result.returncode == 2


class TestSubprocessCluster:
    def test_kill_restart_smoke_converges_exactly_once(self, tmp_path):
        verdict = asyncio.run(
            run_cluster_smoke(
                replicas=4,
                requests=24,
                kill_pid=1,
                seed=19,
                workdir=tmp_path,
                concurrency=4,
                converge_timeout=90.0,
            )
        )
        assert verdict["ok"]
        # sets_completed counts the workload plus the sentinel and any
        # convergence nudges — never fewer, duplicates never double-count.
        assert verdict["committed"] >= 25
        assert verdict["transfers"][1] >= 1
        assert set(verdict["exit_codes"].values()) == {0}
        assert all(r == 0 for r in verdict["suffix_rejections"].values())
        logs = sorted(p.name for p in tmp_path.glob("node-*.log"))
        assert logs == ["node-0.log", "node-1.log", "node-2.log", "node-3.log"]
        metrics = list((tmp_path / "metrics").glob("node-*.jsonl"))
        assert len(metrics) == 4
