"""The reliable-channel transport: seq/ack/retransmit over a faulty wire.

Covers the unit-level state machine (sequence numbers, cumulative acks,
retransmission backoff, duplicate suppression, FIFO reassembly, channel
abandonment) and the acceptance scenario of the robustness PR: consensus
over a lossy, partitioned wire passes its oracles behind the transport,
demonstrably fails without retransmission, and the run artifact shows
per-link fault/recovery counters.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.run_report import RunReport
from repro.campaign.runner import run_scenario
from repro.campaign.scenario import Scenario
from repro.errors import ConfigurationError
from repro.observability.registry import MODULE_TRANSPORT, MetricsRegistry
from repro.sim.network import FixedDelay, LinkModel, Network, Partition
from repro.sim.scheduler import Scheduler
from repro.sim.trace import Trace
from repro.sim.transport import AckSegment, DataSegment, ReliableTransport
from repro.sim.world import World
from repro.systems import build_transformed_system


def make_stack(link_model=None, n=3, seed=0, crashed=None, **transport_kwargs):
    scheduler = Scheduler(seed=seed)
    trace = Trace()
    metrics = MetricsRegistry()
    network = Network(
        scheduler,
        trace,
        delay_model=FixedDelay(1.0),
        metrics=metrics,
        link_model=link_model,
    )
    transport = ReliableTransport(
        network, scheduler, trace, metrics=metrics, crashed=crashed,
        **transport_kwargs,
    )
    inboxes: dict[int, list] = {pid: [] for pid in range(n)}
    for pid in range(n):
        transport.register(
            pid, lambda src, msg, pid=pid: inboxes[pid].append((src, msg))
        )
    return scheduler, transport, inboxes, metrics


class TestTransportUnit:
    def test_plain_delivery_unchanged(self):
        scheduler, transport, inboxes, _ = make_stack()
        for i in range(10):
            transport.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(10))
        assert transport.retransmissions == 0

    def test_self_channel_bypasses_framing(self):
        scheduler, transport, inboxes, _ = make_stack()
        transport.send(2, 2, "note-to-self")
        scheduler.run()
        assert inboxes[2] == [(2, "note-to-self")]

    def test_config_validated(self):
        scheduler = Scheduler(seed=0)
        trace = Trace()
        network = Network(scheduler, trace)
        for kwargs in (
            {"rto": 0.0},
            {"backoff": 1.0},
            {"max_rto": 0.5, "rto": 1.0},
            {"retry_limit": 0},
        ):
            with pytest.raises(ConfigurationError):
                ReliableTransport(network, scheduler, trace, **kwargs)

    def test_loss_recovered_by_retransmission_in_order(self):
        model = LinkModel(loss=0.4)
        scheduler, transport, inboxes, _ = make_stack(link_model=model, seed=5)
        for i in range(40):
            transport.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(40))
        assert transport.retransmissions > 0

    def test_wire_duplicates_suppressed_exactly_once(self):
        model = LinkModel(duplication=0.6)
        scheduler, transport, inboxes, _ = make_stack(link_model=model, seed=5)
        for i in range(40):
            transport.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(40))
        assert transport.duplicates_suppressed > 0

    def test_reordered_wire_reassembled_fifo(self):
        model = LinkModel(reorder=0.4, reorder_spread=15.0)
        scheduler, transport, inboxes, _ = make_stack(link_model=model, seed=5)
        for i in range(40):
            transport.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(40))

    def test_everything_at_once_still_exactly_once_in_order(self):
        model = LinkModel(loss=0.25, duplication=0.25, reorder=0.2)
        scheduler, transport, inboxes, _ = make_stack(link_model=model, seed=9)
        for i in range(60):
            transport.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(60))

    def test_no_retransmit_ablation_loses_messages(self):
        model = LinkModel(loss=0.4)
        scheduler, transport, inboxes, _ = make_stack(
            link_model=model, seed=5, retransmit=False
        )
        for i in range(40):
            transport.send(0, 1, i)
        scheduler.run()
        assert not transport.retransmit_enabled
        assert transport.retransmissions == 0
        got = [msg for _, msg in inboxes[1]]
        assert got != list(range(40))  # the wire's loss goes unrepaired
        assert got == list(range(len(got)))  # but delivery stays FIFO-prefix

    def test_retransmission_survives_partition_then_heal(self):
        model = LinkModel(
            partitions=(Partition(start=0.0, heal=40.0, groups=((0,), (1,))),)
        )
        scheduler, transport, inboxes, _ = make_stack(link_model=model)
        for i in range(5):
            transport.send(0, 1, i)
        scheduler.run()
        assert [msg for _, msg in inboxes[1]] == list(range(5))
        assert transport.retransmissions >= 5
        assert transport.channels_abandoned == 0

    def test_permanent_partition_abandons_channel_and_quiesces(self):
        # A partition longer than the retry budget: the channel gives up so
        # the world can go quiescent instead of retransmitting forever.
        model = LinkModel(
            partitions=(
                Partition(start=0.0, heal=100_000.0, groups=((0,), (1,))),
            )
        )
        scheduler, transport, inboxes, _ = make_stack(
            link_model=model, retry_limit=3
        )
        transport.send(0, 1, "void")
        result = scheduler.run()
        assert result.reason == "quiescent"
        assert inboxes[1] == []
        assert transport.channels_abandoned == 1

    def test_crashed_receiver_neither_acks_nor_delivers(self):
        crashed = {1}
        scheduler, transport, inboxes, _ = make_stack(
            crashed=lambda pid: pid in crashed, retry_limit=3
        )
        transport.send(0, 1, "to-the-dead")
        scheduler.run()
        assert inboxes[1] == []
        assert transport.channels_abandoned == 1

    def test_rto_backs_off_exponentially(self):
        model = LinkModel(
            partitions=(Partition(start=0.0, heal=200.0, groups=((0,), (1,))),)
        )
        scheduler, transport, inboxes, _ = make_stack(
            link_model=model, rto=2.0, backoff=2.0, max_rto=16.0
        )
        transport.send(0, 1, "x")
        scheduler.run()
        retransmits = [
            e for e in transport._trace if e.kind == "transport-retransmit"
        ]
        rtos = [e.detail["rto"] for e in retransmits]
        assert rtos[:4] == [2.0, 4.0, 8.0, 16.0]
        assert all(rto <= 16.0 for rto in rtos)  # capped at max_rto
        assert inboxes[1] == [(0, "x")]  # heals before the retry budget ends

    def test_per_link_metrics_recorded(self):
        model = LinkModel(loss=0.4)
        scheduler, transport, inboxes, metrics = make_stack(
            link_model=model, seed=5
        )
        for i in range(40):
            transport.send(0, 1, i)
        scheduler.run()
        assert metrics.counter_total(MODULE_TRANSPORT, "retransmit[0->1]") == \
            transport.retransmissions
        assert metrics.counter_total(MODULE_TRANSPORT, "ack[0->1]") > 0

    def test_segments_are_value_objects(self):
        assert DataSegment(seq=3, payload="p") == DataSegment(seq=3, payload="p")
        assert AckSegment(ack=2) != AckSegment(ack=3)


class TestWorldIntegration:
    def test_world_rejects_unknown_transport(self):
        from repro.sim.process import Process

        with pytest.raises(ConfigurationError):
            World([Process(), Process()], transport="bogus")

    def test_transformed_consensus_survives_loss(self):
        link = LinkModel(loss=0.2)
        system = build_transformed_system(
            ["a", "b", "c", "d"],
            seed=1,
            muteness="adaptive",
            link_model=link,
            transport="reliable",
        )
        system.run(max_time=3_000.0)
        assert system.all_correct_decided()
        assert len(set(system.decisions().values())) == 1
        assert system.world.network.messages_dropped > 0
        assert system.world.transport.retransmissions > 0


# The acceptance scenario of the robustness PR: per-link loss 0.2 plus one
# partition-then-heal window. Deterministic at this seed: behind the
# reliable transport the oracles pass; without retransmission they fail.
ACCEPTANCE = Scenario(
    protocol="transformed",
    n=4,
    seed=1,
    loss=0.2,
    partitions=((40.0, 120.0, "0,1|2,3"),),
    transport="reliable",
    muteness="adaptive",
)


class TestAcceptanceScenario:
    def test_consensus_survives_loss_and_partition(self):
        record = run_scenario(ACCEPTANCE)
        assert record.verdict == "pass"
        assert record.messages_dropped > 0
        assert record.retransmissions > 0

    def test_deterministic_byte_identical_record(self):
        first = run_scenario(ACCEPTANCE).to_record()
        second = run_scenario(ACCEPTANCE).to_record()
        assert first == second

    def test_no_retransmit_ablation_fails(self):
        ablated = replace(ACCEPTANCE, transport="no-retransmit")
        record = run_scenario(ablated)
        assert record.verdict == "fail"

    def test_report_shows_per_link_counters(self):
        from repro.campaign.scenario import build_scenario_system

        system = build_scenario_system(ACCEPTANCE)
        system.run(max_time=ACCEPTANCE.max_time)
        report = RunReport.from_system(system)
        health = report.link_health()
        assert health, "expected per-link counters in the report"
        # Every directed link between distinct pids saw drops or repairs.
        dropped = sum(c.get("drop", 0) for c in health.values())
        retransmitted = sum(c.get("retransmit", 0) for c in health.values())
        acked = sum(c.get("ack", 0) for c in health.values())
        assert dropped > 0 and retransmitted > 0 and acked > 0
        rendered = report.render()
        assert "link health" in rendered

    def test_report_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "lossy.jsonl"
        code = main(
            [
                "run",
                "--n", "4",
                "--seed", "1",
                "--loss", "0.2",
                "--partition", "40:120:0,1|2,3",
                "--transport", "reliable",
                "--muteness", "adaptive",
                "--metrics-out", str(artifact),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "link health" in out
        assert "retransmit" in out
