"""Unit tests: the programmatic experiment-suite runner and its CLI."""

from __future__ import annotations

import pytest

from repro.analysis.suite import benchmarks_dir, discover, load_runner, run_experiments
from repro.cli import main
from repro.errors import ConfigurationError


class TestDiscovery:
    def test_benchmarks_dir_found(self):
        directory = benchmarks_dir()
        assert (directory / "conftest.py").exists()

    def test_discovers_every_experiment(self):
        found = discover()
        assert {"e1", "e3", "e13", "e17"} <= set(found)
        assert len(found) >= 18

    def test_ids_map_to_existing_files(self):
        for key, path in discover().items():
            assert path.exists()
            assert key in path.name


class TestRunning:
    def test_run_single_fast_experiment(self):
        results = run_experiments(only=["e13"])
        assert set(results) == {"e13"}
        rows = results["e13"]
        assert len(rows) == 6  # rounds 1..6
        assert rows[-1][3] > 100  # the pruning blow-up factor

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiments(only=["e999"])

    def test_load_runner_requires_run_experiment(self, tmp_path):
        empty = tmp_path / "test_e99_nothing.py"
        empty.write_text("x = 1\n")
        with pytest.raises(ConfigurationError):
            load_runner(empty)


class TestCli:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "test_e14_fifo_necessity.py" in out

    def test_run_only_e13(self, capsys):
        assert main(["experiments", "--only", "e13"]) == 0
        out = capsys.readouterr().out
        assert "E13" in out
        assert "97552" in out  # the round-6 unpruned size

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiments", "--only", "e999"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
