"""Unit tests: the CLI and the trace formatting/export tools."""

from __future__ import annotations

import json

import pytest

from repro.analysis.tracefmt import (
    describe_payload,
    render_sequence,
    trace_to_json,
    trace_to_records,
)
from repro.cli import main
from repro.messages.consensus import Current, Decide
from repro.systems import build_crash_system, build_transformed_system
from tests.helpers import SignedWorkbench


class TestDescribePayload:
    def test_plain_body(self):
        text = describe_payload(Current(sender=0, round=2, est="x"))
        assert text == "CURRENT(round=2, est='x')"

    def test_signed_message_shows_cert_shape(self):
        bench = SignedWorkbench(4)
        message = bench.coordinator_current()
        text = describe_payload(message)
        assert "VCURRENT" in text
        assert "cert[3]" in text
        assert "signed:0" in text

    def test_pruned_cert_labelled(self):
        bench = SignedWorkbench(4)
        light = bench.coordinator_current().light()
        assert "cert[pruned]" in describe_payload(light)

    def test_long_values_truncated(self):
        text = describe_payload(Decide(sender=0, est="x" * 100))
        assert len(text) < 80

    def test_foreign_payloads_repr(self):
        assert describe_payload({"a": 1}) == "{'a': 1}"


class TestTraceExport:
    @pytest.fixture
    def finished_system(self):
        system = build_crash_system(["a", "b", "c"], seed=1)
        system.run()
        return system

    def test_records_are_json_ready(self, finished_system):
        records = trace_to_records(finished_system.world.trace)
        blob = json.dumps(records)
        assert blob
        assert all("time" in r and "kind" in r for r in records)

    def test_kind_filter(self, finished_system):
        records = trace_to_records(
            finished_system.world.trace, kinds={"decide"}
        )
        assert records
        assert all(r["kind"] == "decide" for r in records)

    def test_json_roundtrip(self, finished_system):
        parsed = json.loads(trace_to_json(finished_system.world.trace))
        assert isinstance(parsed, list)

    def test_sequence_chart_mentions_everything(self, finished_system):
        chart = render_sequence(finished_system.world.trace, 3)
        assert "p0" in chart and "p2" in chart
        assert "CURRENT" in chart
        assert "DECIDE" in chart
        assert "-> *" in chart

    def test_sequence_chart_truncation(self, finished_system):
        chart = render_sequence(finished_system.world.trace, 3, max_events=2)
        assert "truncated" in chart


class TestCli:
    def test_params(self, capsys):
        assert main(["params", "--n", "7"]) == 0
        out = capsys.readouterr().out
        assert "arbitrary-fault bound F    = 2" in out

    def test_run_transformed_with_attack(self, capsys):
        code = main(
            ["run", "--n", "4", "--attack", "3:corrupt-vector", "--seed", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement=True" in out
        assert "detections: {3: 3}" in out

    def test_run_crash_protocol_violation_exits_nonzero(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "hurfin-raynal",
                "--n",
                "5",
                "--attack",
                "4:spurious-decide",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out

    def test_run_with_crash_and_chart(self, capsys):
        code = main(
            ["run", "--protocol", "chandra-toueg", "--n", "4",
             "--crash", "0:0.5", "--chart"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "time" in out and "| p0" not in out.splitlines()[0]

    def test_run_echo_init_variant(self, capsys):
        assert main(["run", "--n", "4", "--variant", "echo-init"]) == 0

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        code = main(["run", "--n", "4", "--json", str(target)])
        assert code == 0
        parsed = json.loads(target.read_text())
        assert parsed

    def test_attacks_listing(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "corrupt-vector" in out
        assert "spurious-decide" in out

    def test_gallery(self, capsys):
        assert main(["gallery", "--n", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "attack gallery" in out
        assert "mute" in out

    def test_bad_pair_syntax(self, capsys):
        # Malformed PID:VALUE pairs are configuration errors (exit 2),
        # not tracebacks.
        assert main(["run", "--crash", "zzz"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_repro_error_becomes_exit_2(self, capsys):
        # 2 attackers with n=4 exceeds F=1 -> ConfigurationError -> exit 2.
        code = main(
            ["run", "--n", "4", "--attack", "2:mute", "--attack", "3:mute"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
