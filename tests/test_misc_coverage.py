"""Widening tests: smaller behaviours not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.analysis.tracefmt import render_sequence
from repro.broadcast.reliable import ReliableBroadcast
from repro.consensus.base import ConsensusProcess
from repro.consensus.certification import (
    current_message_problems,
    est_cert_problems,
)
from repro.core.certificates import Certificate
from repro.errors import (
    CertificateError,
    ClockError,
    ConfigurationError,
    CryptoError,
    NetworkError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SignatureError,
    SimulationError,
)
from repro.sim.network import FixedDelay
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.sim.world import World
from tests.helpers import SignedWorkbench


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ClockError,
            SchedulerError,
            NetworkError,
            ProtocolError,
            CertificateError,
            SignatureError,
            ConfigurationError,
        ],
    )
    def test_all_library_errors_are_repro_errors(self, exc):
        assert issubclass(exc, ReproError)

    def test_simulation_branch(self):
        assert issubclass(ClockError, SimulationError)
        assert issubclass(NetworkError, SimulationError)

    def test_crypto_branch(self):
        assert issubclass(SignatureError, CryptoError)
        assert not issubclass(SignatureError, SimulationError)


class TestConsensusBaseDefaults:
    def test_base_hooks_are_overridable_contracts(self):
        process = ConsensusProcess(proposal="x", detector=None)
        with pytest.raises(NotImplementedError):
            process.start_protocol()
        with pytest.raises(NotImplementedError):
            process.handle_message(0, "payload")
        # Optional hooks are no-ops by default.
        process.evaluate_guards()
        process.handle_timer("anything")

    def test_suspected_empty_without_detector(self):
        process = ConsensusProcess(proposal="x", detector=None)
        assert process.suspected == frozenset()

    def test_unknown_timer_routed_to_handle_timer(self):
        seen = []

        class P(ConsensusProcess):
            def start_protocol(self):
                self.set_timer("custom", 1.0)

            def handle_message(self, src, payload):
                pass

            def handle_timer(self, name):
                seen.append(name)

        world = World([P(proposal="x", detector=None)])
        world.run()
        assert seen == ["custom"]


class TestDeepChainDefence:
    def test_relay_chain_deeper_than_n_rejected(self):
        """A Byzantine sender can nest relays beyond any honest depth;
        the analyser cuts the recursion at n+1."""
        bench = SignedWorkbench(4)
        message = bench.coordinator_current()
        # Build a relay chain of length n + 3 (senders repeat — only a
        # forger would produce this).
        for hop in range(bench.n + 3):
            relayer = 1 + (hop % 2)  # alternate relayers 1 and 2
            message = bench.relay_current(relayer, message)
        problems = current_message_problems(message, bench.params, bench.verify)
        assert problems

    def test_est_cert_depth_guard(self):
        bench = SignedWorkbench(4)
        message = bench.coordinator_current()
        for hop in range(bench.n + 3):
            message = bench.relay_current(1 + (hop % 2), message)
        problems = est_cert_problems(
            Certificate((message,)),
            message.body.est_vect,
            bench.params,
            bench.verify,
        )
        assert problems


class TestBroadcastLargerSystems:
    def test_n7_f2_quorums(self):
        rb = ReliableBroadcast(f=2, deliver=lambda *a: None)

        class Host(Process):
            def __init__(self):
                super().__init__()
                self.rb = ReliableBroadcast(f=2, deliver=lambda *a: None)

            def bind(self, env):
                super().bind(env)
                self.rb.attach(env)

            def on_message(self, src, payload):
                self.rb.filter_message(src, payload)

        hosts = [Host() for _ in range(7)]
        world = World(hosts, delay_model=FixedDelay(0.2))
        assert hosts[0].rb.echo_quorum == 5
        assert hosts[0].rb.ready_amplify == 3
        assert hosts[0].rb.ready_deliver == 5
        del rb, world


class TestSequenceRenderingEdges:
    def test_unicast_sends_listed_with_targets(self):
        trace = Trace()
        trace.record(1.0, "send", process=0, dst=2, payload="hello")
        trace.record(1.0, "send", process=0, dst=1, payload="hello")
        chart = render_sequence(trace, 3)
        assert "-> 1,2" in chart

    def test_empty_trace_renders_header_only(self):
        chart = render_sequence(Trace(), 2)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert "p0" in lines[0]

    def test_non_send_kinds_filtered(self):
        trace = Trace()
        trace.record(1.0, "deliver", process=0, src=1, payload="x")
        chart = render_sequence(trace, 2)
        assert "deliver" not in chart


class TestEchoInitDirectInitRejected:
    def test_direct_channel_init_declares_sender(self):
        from repro.core.certificates import EMPTY_CERTIFICATE
        from repro.messages.consensus import Init
        from repro.systems import build_transformed_system

        system = build_transformed_system(
            [f"v{i}" for i in range(4)], variant="echo-init", seed=0
        )
        system.world.start()
        system.world.scheduler.run(max_events=4)
        target = system.processes[0]
        rogue_init = system.processes[2].authority.make(
            Init(sender=2, value="out-of-band"), EMPTY_CERTIFICATE
        )
        target.on_message(2, rogue_init)
        assert 2 in target.faulty
