"""Unit tests: failure detectors (oracle ◇S, heartbeat, ◇M muteness)."""

from __future__ import annotations

import pytest

from repro.detectors.base import FailureDetector
from repro.detectors.diamond_m import (
    AdaptiveMutenessDetector,
    MutenessDetector,
    RoundAwareMutenessDetector,
)
from repro.detectors.diamond_s import (
    heartbeat_diamond_s_suite,
    oracle_diamond_s_suite,
)
from repro.detectors.heartbeat import Heartbeat, HeartbeatDetector
from repro.detectors.oracles import OracleDetector, PerfectOracle
from repro.errors import ProtocolError
from repro.sim.network import FixedDelay, TargetedSlowdown, UniformDelay
from repro.sim.process import Process
from repro.sim.world import World


class Host(Process):
    """Minimal process hosting a detector and forwarding its traffic."""

    def __init__(self, detector: FailureDetector):
        super().__init__()
        self.detector = detector

    def bind(self, env):
        super().bind(env)
        self.detector.attach(env)

    def on_start(self):
        self.detector.start()

    def on_message(self, src, payload):
        if self.detector.filter_message(src, payload):
            return
        self.detector.on_protocol_message(src)


def build_hosts(detectors, seed=0, delay_model=None):
    hosts = [Host(d) for d in detectors]
    world = World(hosts, seed=seed, delay_model=delay_model or FixedDelay(0.2))
    return world, hosts


class TestFailureDetectorBase:
    def test_use_before_attach_rejected(self):
        detector = MutenessDetector()
        with pytest.raises(ProtocolError):
            _ = detector.env

    def test_double_attach_rejected(self):
        world, hosts = build_hosts([MutenessDetector(), MutenessDetector()])
        with pytest.raises(ProtocolError):
            hosts[0].detector.attach(hosts[0].env)

    def test_stop_flag(self):
        detector = MutenessDetector()
        assert not detector.stopped
        detector.stop()
        assert detector.stopped


class TestOracleDetector:
    def test_suspects_exactly_the_faulty(self):
        faulty = {1}
        detectors = [
            OracleDetector(status=lambda pid: pid in faulty) for _ in range(3)
        ]
        world, hosts = build_hosts(detectors)
        world.run(max_time=5.0)
        assert hosts[0].detector.suspected == frozenset({1})
        assert hosts[2].detector.suspected == frozenset({1})

    def test_never_suspects_self(self):
        detectors = [OracleDetector(status=lambda pid: True) for _ in range(2)]
        world, hosts = build_hosts(detectors)
        world.run(max_time=5.0)
        assert 0 not in hosts[0].detector.suspected
        assert 1 in hosts[0].detector.suspected

    def test_unsuspects_recovered(self):
        # The status source flips off after a while; the next poll clears it.
        state = {"faulty": True}
        detector = OracleDetector(status=lambda pid: state["faulty"] and pid == 1)
        world, hosts = build_hosts([detector, OracleDetector(lambda pid: False)])
        world.run(max_time=3.0)
        assert 1 in hosts[0].detector.suspected
        state["faulty"] = False
        world.run(max_time=6.0)
        assert 1 not in hosts[0].detector.suspected

    def test_noise_respects_trusted_and_horizon(self):
        detector = OracleDetector(
            status=lambda pid: False,
            trusted=1,
            accuracy_time=50.0,
            noise_rate=1.0,
        )
        peer = OracleDetector(status=lambda pid: False)
        filler = OracleDetector(status=lambda pid: False)
        world, hosts = build_hosts([detector, peer, filler])
        world.run(max_time=20.0)
        # With noise_rate 1.0 some erroneous suspicion happened, but never
        # of the trusted process.
        trace_targets = {
            e.detail["target"]
            for e in world.trace.of_kind("suspect")
            if e.process == 0
        }
        assert trace_targets, "noise should have produced suspicions"
        assert 1 not in trace_targets
        # After the horizon all erroneous suspicions die out.
        world.run(max_time=60.0)
        assert hosts[0].detector.suspected == frozenset()

    def test_perfect_oracle_has_no_noise(self):
        detectors = [PerfectOracle(status=lambda pid: False) for _ in range(2)]
        world, hosts = build_hosts(detectors)
        world.run(max_time=10.0)
        assert world.trace.count("suspect") == 0

    def test_suite_builder_shares_trusted(self):
        world_processes = [
            Host(MutenessDetector()) for _ in range(3)
        ]  # placeholder hosts; we only exercise the builder
        world = World(world_processes)
        suite = oracle_diamond_s_suite(world, trusted=2, noise_rate=0.5)
        assert len(suite) == 3
        assert all(d._trusted == 2 for d in suite)


class TestHeartbeatDetector:
    def test_no_suspicion_among_correct(self):
        detectors = heartbeat_diamond_s_suite(3, period=1.0, initial_timeout=5.0)
        world, hosts = build_hosts(detectors, delay_model=FixedDelay(0.2))
        world.run(max_time=40.0)
        for host in hosts:
            assert host.detector.suspected == frozenset()

    def test_crashed_process_gets_suspected_forever(self):
        detectors = heartbeat_diamond_s_suite(3, period=1.0, initial_timeout=4.0)
        world, hosts = build_hosts(detectors, delay_model=FixedDelay(0.2))
        world.crash_at(2, 5.0)
        world.run(max_time=60.0)
        assert 2 in hosts[0].detector.suspected
        assert 2 in hosts[1].detector.suspected

    def test_heartbeats_are_filtered(self):
        detector = HeartbeatDetector()
        assert isinstance(Heartbeat(sender=0), Heartbeat)
        # filter_message consumes heartbeats, passes through the rest
        world, hosts = build_hosts([HeartbeatDetector(), HeartbeatDetector()])
        world.run(max_time=3.0)
        assert hosts[0].detector.filter_message(1, "protocol-payload") is False

    def test_slow_process_recovers_with_backoff(self):
        # Slow p2's channels 8x: it gets wrongly suspected, then timeouts
        # back off and the suspicion is withdrawn.
        detectors = heartbeat_diamond_s_suite(3, period=1.0, initial_timeout=2.0)
        world, hosts = build_hosts(
            detectors,
            delay_model=TargetedSlowdown(UniformDelay(0.2, 0.6), slow={2}, factor=8.0),
        )
        world.run(max_time=200.0)
        assert hosts[0].detector.wrongful_suspicions > 0
        assert hosts[0].detector.timeout_of(2) > 2.0
        assert 2 not in hosts[0].detector.suspected


class TestMutenessDetector:
    def test_silent_peer_suspected(self):
        world, hosts = build_hosts(
            [MutenessDetector(initial_timeout=3.0), MutenessDetector(initial_timeout=3.0)]
        )
        world.run(max_time=10.0)
        # Nobody sends protocol messages here, so each suspects the other.
        assert 1 in hosts[0].detector.suspected
        assert 0 in hosts[1].detector.suspected

    def test_protocol_message_rearms_timeout(self):
        class Chatty(Host):
            def on_start(self):
                super().on_start()
                self._chat()

            def _chat(self):
                if not self.crashed:
                    self.send(1, "protocol")
                    self.env.scheduler.schedule_after(1.0, "chat", self._chat)

        detector_a = MutenessDetector(initial_timeout=3.0)
        detector_b = MutenessDetector(initial_timeout=3.0)
        chatty = Chatty(detector_a)
        listener = Host(detector_b)
        world = World([chatty, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=20.0)
        assert 0 not in listener.detector.suspected  # chatty is not mute
        assert 1 in chatty.detector.suspected  # listener never speaks

    def test_round_aware_timeout_scales_with_round(self):
        detector = RoundAwareMutenessDetector(
            initial_timeout=4.0, round_growth=1.5
        )
        assert detector.timeout_of(0) == 4.0
        detector.notify_round(3)
        assert detector.current_round == 3
        assert detector.timeout_of(0) == 4.0 * 1.5**2

    def test_round_aware_never_regresses(self):
        detector = RoundAwareMutenessDetector(initial_timeout=4.0)
        detector.notify_round(5)
        detector.notify_round(2)  # stale notification
        assert detector.current_round == 5

    def test_round_aware_composes_with_backoff(self):
        class LateTalker(Host):
            def on_start(self):
                super().on_start()
                self.set_timer("talk", 5.0)

            def on_timer(self, name):
                self.send(1, "protocol")

        listener = Host(RoundAwareMutenessDetector(initial_timeout=3.0))
        talker = LateTalker(RoundAwareMutenessDetector(initial_timeout=3.0))
        world = World([talker, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=7.0)
        # Wrongful suspicion doubled the per-peer base; round scaling
        # multiplies on top.
        assert listener.detector.timeout_of(0) == 6.0
        listener.detector.notify_round(2)
        assert listener.detector.timeout_of(0) == 9.0

    def test_end_to_end_round_aware_system(self):
        from repro.analysis.properties import check_vector_consensus
        from repro.systems import build_transformed_system

        system = build_transformed_system(
            [f"v{i}" for i in range(4)],
            crash_at={0: 0.0},
            muteness="round-aware",
            muteness_timeout=4.0,
            seed=3,
        )
        system.run(max_time=3_000)
        assert check_vector_consensus(system).all_hold
        survivors = [p for p in system.processes if p.pid != 0]
        assert all(p.detector.current_round >= 2 for p in survivors)

    def test_backoff_doubles_timeout_after_wrongful_suspicion(self):
        class LateTalker(Host):
            def on_start(self):
                super().on_start()
                self.set_timer("talk", 6.0)  # past the 3.0 initial timeout

            def on_timer(self, name):
                self.send(1, "protocol")

        talker = LateTalker(MutenessDetector(initial_timeout=3.0))
        listener = Host(MutenessDetector(initial_timeout=3.0))
        world = World([talker, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=7.0)
        assert listener.detector.wrongful_suspicions == 1
        assert listener.detector.timeout_of(0) == 6.0
        assert 0 not in listener.detector.suspected

    def test_repeated_wrongful_suspicions_compound_the_backoff(self):
        class BurstTalker(Host):
            # Speaks at t=4 and t=11: each burst lands just after the
            # listener's current timeout expired, so each is a wrongful
            # suspicion and the doubling compounds.
            def on_start(self):
                super().on_start()
                self.set_timer("talk-1", 4.0)
                self.set_timer("talk-2", 11.0)

            def on_timer(self, name):
                self.send(1, "protocol")

        talker = BurstTalker(MutenessDetector(initial_timeout=3.0))
        listener = Host(MutenessDetector(initial_timeout=3.0))
        world = World([talker, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=12.0)
        assert listener.detector.wrongful_suspicions == 2
        assert listener.detector.timeout_of(0) == 12.0  # 3.0 doubled twice


class Chatter(Host):
    """Sends a protocol message to p1 every ``period`` until ``until``."""

    def __init__(self, detector, period=1.0, first=0.0, until=None):
        super().__init__(detector)
        self._period = period
        self._first = first
        self._until = until

    def on_start(self):
        super().on_start()
        self.set_timer("chat", self._first or self._period)

    def on_timer(self, name):
        self.send(1, "protocol")
        if self._until is None or self.now < self._until:
            self.set_timer("chat", self._period)


class TestAdaptiveMutenessDetector:
    def test_config_validated(self):
        with pytest.raises(ValueError):
            AdaptiveMutenessDetector(safety=0.0)
        with pytest.raises(ValueError):
            AdaptiveMutenessDetector(min_timeout=5.0, max_timeout=1.0)
        with pytest.raises(ValueError):
            AdaptiveMutenessDetector(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveMutenessDetector(penalty_decay=0.0)

    def test_falls_back_to_initial_timeout_before_first_sample(self):
        detector = AdaptiveMutenessDetector(initial_timeout=9.0)
        assert detector.estimate_of(0) is None
        assert detector.timeout_of(0) == 9.0

    def test_estimator_converges_on_stable_cadence(self):
        listener = Host(AdaptiveMutenessDetector(initial_timeout=8.0))
        talker = Chatter(
            AdaptiveMutenessDetector(initial_timeout=8.0), period=1.0
        )
        world = World([talker, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=100.0)
        estimate = listener.detector.estimate_of(0)
        assert estimate == pytest.approx(1.0, rel=0.05)
        # Constant gaps shrink rttvar, so the timeout converges well below
        # the static fallback while respecting the min_timeout floor.
        assert 2.0 <= listener.detector.timeout_of(0) < 8.0
        assert 0 not in listener.detector.suspected
        assert listener.detector.wrongful_suspicions == 0

    def test_wrongful_suspicion_multiplies_penalty(self):
        listener = Host(AdaptiveMutenessDetector(initial_timeout=3.0))
        # First word arrives only after the 3.0 fallback timeout expired.
        talker = Chatter(
            AdaptiveMutenessDetector(initial_timeout=3.0),
            period=1.0,
            first=6.0,
            until=6.5,
        )
        world = World([talker, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=7.0)
        assert listener.detector.wrongful_suspicions == 1
        assert listener.detector.penalty_of(0) == 2.0
        # No inter-arrival sample yet: fallback times the penalty.
        assert listener.detector.timeout_of(0) == 6.0
        assert 0 not in listener.detector.suspected

    def test_penalty_decays_while_peer_keeps_talking(self):
        listener = Host(
            AdaptiveMutenessDetector(initial_timeout=2.0, penalty_decay=0.5)
        )
        talker = Chatter(
            AdaptiveMutenessDetector(initial_timeout=2.0, penalty_decay=0.5),
            period=1.0,
            first=5.0,
        )
        world = World([talker, listener], delay_model=FixedDelay(0.1))
        world.run(max_time=30.0)
        assert listener.detector.wrongful_suspicions == 1
        # The one early mistake was forgiven as sound arrivals kept coming.
        assert listener.detector.penalty_of(0) == 1.0
        assert 0 not in listener.detector.suspected

    def test_end_to_end_adaptive_system(self):
        from repro.analysis.properties import check_vector_consensus
        from repro.systems import build_transformed_system

        system = build_transformed_system(
            [f"v{i}" for i in range(4)],
            muteness="adaptive",
            seed=2,
        )
        system.run(max_time=3_000)
        assert check_vector_consensus(system).all_hold
