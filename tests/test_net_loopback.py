"""Tests: the net runtime on the in-memory loopback fabric.

Same :class:`NetNode` hosts, same wire codec on every hop, but the
transport is :class:`LoopbackHub` and the clock is
:class:`ManualScheduler` — so the full deployment (commits, quorum
reads, kill/rejoin via certified state transfer) runs deterministically
inside the test process with no sockets or sleeps.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    LoopbackHub,
    ManualScheduler,
    NetNode,
    TransportError,
    make_genesis,
)
from repro.net.messages import ReadReply, ReadRequest, StatusReply, StatusRequest
from repro.observability.export import read_run_jsonl
from repro.replication.kvstore import Command
from repro.service.checkpoint import service_digest
from repro.service.messages import ClientReply, ClientRequest


class LoopbackClient:
    """Minimal correct client: f+1 distinct acks, resubmit on silence."""

    def __init__(self, genesis, hub, scheduler, index=0):
        self.genesis = genesis
        self.pid = genesis.n_replicas + index
        self.f = genesis.service_config().params().f
        self.scheduler = scheduler
        self.transport = hub.register(self.pid, self._on_message)
        self.next_id = 0
        self.outstanding: dict[int, ClientRequest] = {}
        self.attempts: dict[int, int] = {}
        self.acks: dict[int, set[int]] = {}
        self.completed: set[int] = set()
        self.read_replies: dict[int, dict[int, tuple[bool, object]]] = {}
        self.statuses: dict[int, StatusReply] = {}

    def _on_message(self, src, message):
        if isinstance(message, ClientReply) and message.client == self.pid:
            if message.req_id in self.completed:
                return
            self.acks.setdefault(message.req_id, set()).add(message.replica)
            if len(self.acks[message.req_id]) >= self.f + 1:
                self.completed.add(message.req_id)
                self.outstanding.pop(message.req_id, None)
        elif isinstance(message, ReadReply) and message.client == self.pid:
            self.read_replies.setdefault(message.req_id, {})[message.replica] = (
                message.found,
                message.value,
            )
        elif isinstance(message, StatusReply) and message.client == self.pid:
            self.statuses[message.replica] = message

    def set(self, key, value) -> int:
        req_id = self.next_id
        self.next_id += 1
        request = ClientRequest(
            client=self.pid, req_id=req_id, command=Command("set", key, value)
        )
        self.outstanding[req_id] = request
        self.attempts[req_id] = 0
        self._submit(req_id)
        return req_id

    def _submit(self, req_id) -> None:
        request = self.outstanding.get(req_id)
        if request is None:
            return
        attempt = self.attempts[req_id]
        self.attempts[req_id] += 1
        target = (self.pid + req_id + attempt) % self.genesis.n_replicas
        self.transport.send(target, request)
        self.scheduler.schedule_after(
            self.genesis.request_timeout, "resubmit", lambda: self._submit(req_id)
        )

    def read(self, key) -> int:
        req_id = self.next_id
        self.next_id += 1
        request = ReadRequest(client=self.pid, req_id=req_id, key=key)
        for replica in range(self.genesis.n_replicas):
            self.transport.send(replica, request)
        return req_id

    def quorum_read(self, req_id):
        """The f+1 matching-distinct-replies rule over collected answers."""
        groups: dict[object, int] = {}
        for answer in self.read_replies.get(req_id, {}).values():
            groups[answer] = groups.get(answer, 0) + 1
        for answer, count in groups.items():
            if count >= self.f + 1:
                return answer
        return None

    def probe_status(self) -> None:
        self.statuses.clear()
        request = StatusRequest(client=self.pid, req_id=self.next_id)
        self.next_id += 1
        for replica in range(self.genesis.n_replicas):
            self.transport.send(replica, request)


class Deployment:
    """4 replicas + 1 client on one hub and one manual clock."""

    def __init__(self, seed=3, **overrides):
        self.genesis = make_genesis(
            4, seed=seed, request_timeout=0.6, stall_probe=2.0, **overrides
        )
        self.scheduler = ManualScheduler()
        self.hub = LoopbackHub(self.scheduler)
        self.nodes: dict[int, NetNode] = {}
        for pid in range(4):
            self.up(pid)
        self.client = LoopbackClient(self.genesis, self.hub, self.scheduler)

    def up(self, pid, join=False, metrics_path=None):
        node = NetNode(
            self.genesis, pid, self.scheduler, join=join,
            metrics_path=metrics_path,
        )
        node.attach_transport(self.hub.register(pid, node.handle_message))
        self.nodes[pid] = node
        node.start()
        return node

    def kill(self, pid):
        self.hub.unregister(pid)
        del self.nodes[pid]

    def pump(self, seconds):
        for _ in range(int(seconds * 10)):
            self.scheduler.advance(0.1)

    def commit(self, count, prefix="v"):
        ids = [
            self.client.set(f"k{i % 8}", f"{prefix}{i}") for i in range(count)
        ]
        self.pump(8)
        return ids

    def digests(self):
        return {
            pid: service_digest(node.process.store, node.process.executed)
            for pid, node in sorted(self.nodes.items())
        }


class TestLoopbackDeployment:
    def test_commits_workload_exactly_once(self):
        deployment = Deployment(seed=3)
        deployment.commit(30)
        client = deployment.client
        assert len(client.completed) == 30
        committed = {
            node.process.committed_commands
            for node in deployment.nodes.values()
        }
        assert committed == {30}
        assert len(set(deployment.digests().values())) == 1

    def test_quorum_read_returns_committed_value(self):
        deployment = Deployment(seed=4)
        deployment.client.set("answer", "42")
        deployment.pump(5)
        req_id = deployment.client.read("answer")
        deployment.pump(1)
        assert deployment.client.quorum_read(req_id) == (True, "42")
        missing = deployment.client.read("never-written")
        deployment.pump(1)
        assert deployment.client.quorum_read(missing) == (False, None)

    def test_status_probe_reports_all_replicas(self):
        deployment = Deployment(seed=5)
        deployment.commit(8)
        deployment.client.probe_status()
        deployment.pump(1)
        statuses = deployment.client.statuses
        assert set(statuses) == {0, 1, 2, 3}
        assert {status.committed for status in statuses.values()} == {8}
        assert len({status.digest for status in statuses.values()}) == 1

    def test_kill_and_rejoin_via_certified_transfer(self):
        deployment = Deployment(seed=6)
        deployment.commit(16, prefix="a")
        deployment.kill(2)
        deployment.commit(16, prefix="b")
        rejoined = deployment.up(2, join=True)
        deployment.pump(10)
        deployment.commit(8, prefix="c")
        deployment.pump(10)
        assert len(deployment.client.completed) == 40
        assert len(set(deployment.digests().values())) == 1
        assert rejoined.process.committed_commands == 40
        assert len(rejoined.process.state_transfers_completed) >= 1
        assert rejoined.process.suffix_rejections == 0

    def test_metrics_export_is_a_valid_artifact(self, tmp_path):
        deployment = Deployment(seed=7)
        target = tmp_path / "node-0.jsonl"
        deployment.kill(0)
        deployment.up(0, metrics_path=target)
        deployment.commit(8)
        deployment.pump(3)  # past metrics_interval
        artifact = read_run_jsonl(target)
        assert artifact.meta["runtime"] == "net"
        assert artifact.meta["node"] == 0
        modules = set(artifact.metrics.totals_by_module())
        assert "net" in modules

    def test_node_guards_its_contract(self):
        deployment = Deployment(seed=8)
        with pytest.raises(ConfigurationError):
            NetNode(deployment.genesis, 9, deployment.scheduler)
        bare = NetNode(deployment.genesis, 1, ManualScheduler())
        with pytest.raises(ConfigurationError):
            bare.start()  # no transport attached
        with pytest.raises(TransportError):
            deployment.hub.register(1, lambda src, message: None)


class TestDrainOrdering:
    """Regression: the scheduler-deferred drain keeps broadcasts atomic.

    ``LoopbackHub.submit`` defers delivery to a zero-delay drain timer
    instead of dispatching synchronously. The observable contract — the
    reason the protocol is safe over this fabric — is that a broadcast
    enqueues *every* copy before any destination's handler runs, so a
    receiver can never observe a reaction to a message (a CURRENT) ahead
    of the message that caused it (its sender's INIT). A synchronous
    drain regression would let the first recipient's cascade overtake
    the second copy; these tests pin the exact order so that refactor
    shows up as a diff, not a heisenbug.
    """

    def _wired_hub(self, n=3):
        scheduler = ManualScheduler()
        hub = LoopbackHub(scheduler)
        log: list[tuple[int, int, str]] = []  # (src, dst, payload)
        transports = {}

        def make_handler(pid):
            def handler(src, message):
                log.append((src, pid, message))
                # INIT triggers an immediate broadcast reaction: the
                # cascade that a synchronous drain would let overtake
                # the original broadcast's remaining copies.
                if message == "init-0" and pid == 1:
                    for dst in range(n):
                        if dst != pid:
                            transports[pid].send(dst, "current-1")
            return handler

        for pid in range(n):
            transports[pid] = hub.register(pid, make_handler(pid))
        return scheduler, hub, transports, log

    def test_receiver_never_sees_the_reaction_before_its_cause(self):
        scheduler, hub, transports, log = self._wired_hub()
        # Node 0 broadcasts INIT; node 1 reacts with a CURRENT broadcast.
        transports[0].send(1, "init-0")
        transports[0].send(2, "init-0")
        scheduler.advance(0.0)
        seen_at_2 = [payload for src, dst, payload in log if dst == 2]
        assert seen_at_2.index("init-0") < seen_at_2.index("current-1"), (
            "node 2 observed node 1's CURRENT before the INIT that "
            f"caused it: {seen_at_2}"
        )

    def test_exact_drain_trace_is_pinned(self):
        scheduler, hub, transports, log = self._wired_hub()
        transports[0].send(1, "init-0")
        transports[0].send(2, "init-0")
        transports[2].send(0, "init-2")
        scheduler.advance(0.0)
        # FIFO over enqueue order: the whole first broadcast, then the
        # unrelated send, then node 1's reaction broadcast (enqueued
        # while draining, delivered by the same iterative drain).
        assert log == [
            (0, 1, "init-0"),
            (0, 2, "init-0"),
            (2, 0, "init-2"),
            (1, 0, "current-1"),
            (1, 2, "current-1"),
        ]
        assert hub.frames_delivered == 5

    def test_trace_is_identical_across_runs(self):
        def run():
            scheduler, hub, transports, log = self._wired_hub()
            transports[0].send(1, "init-0")
            transports[0].send(2, "init-0")
            transports[2].send(0, "init-2")
            scheduler.advance(0.0)
            return log

        assert run() == run()
