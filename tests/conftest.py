"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from tests.helpers import SignedWorkbench


@pytest.fixture
def bench4() -> SignedWorkbench:
    """Four processes, F = 1 (the smallest Byzantine-capable system)."""
    return SignedWorkbench(4)


@pytest.fixture
def bench7() -> SignedWorkbench:
    """Seven processes, F = 2."""
    return SignedWorkbench(7)
