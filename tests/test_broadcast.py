"""Unit and integration tests: Byzantine reliable broadcast."""

from __future__ import annotations

import pytest

from repro.broadcast.reliable import RbEcho, RbReady, RbSend, ReliableBroadcast
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.network import FixedDelay, UniformDelay
from repro.sim.process import Process
from repro.sim.world import World


class RbHost(Process):
    """Minimal process hosting one reliable-broadcast module."""

    def __init__(self, f: int):
        super().__init__()
        self.delivered: list[tuple[int, int, object]] = []
        self.rb = ReliableBroadcast(
            f=f, deliver=lambda o, t, p: self.delivered.append((o, t, p))
        )

    def bind(self, env):
        super().bind(env)
        self.rb.attach(env)

    def on_message(self, src, payload):
        self.rb.filter_message(src, payload)


class RbEquivocator(RbHost):
    """Sends different SENDs to the two halves of the system."""

    def on_start(self):
        for dst in range(self.n):
            value = "branch-a" if dst % 2 == 0 else "branch-b"
            self.send(dst, RbSend(sender=self.pid, tag=0, payload=value))


class RbSilent(RbHost):
    """Participates in echoes/readies but never originates."""


def build(n=4, f=1, seed=0, delay=None, classes=None):
    classes = classes or [RbHost] * n
    hosts = [cls(f) for cls in classes]
    world = World(hosts, seed=seed, delay_model=delay or FixedDelay(0.3))
    return world, hosts


class TestQuorumArithmetic:
    def test_quorums_for_n4_f1(self):
        world, hosts = build()
        rb = hosts[0].rb
        assert rb.echo_quorum == 3
        assert rb.ready_amplify == 2
        assert rb.ready_deliver == 3

    def test_attach_requires_n_gt_3f(self):
        hosts = [RbHost(1) for _ in range(3)]
        with pytest.raises(ConfigurationError):
            World(hosts)

    def test_use_before_attach_rejected(self):
        rb = ReliableBroadcast(f=1, deliver=lambda *a: None)
        with pytest.raises(ProtocolError):
            rb.broadcast("x")


class TestHappyPath:
    def test_broadcast_delivers_everywhere(self):
        world, hosts = build()
        world.scheduler.schedule_at(0.0, "go", lambda: hosts[0].rb.broadcast("m"))
        world.run()
        for host in hosts:
            assert host.delivered == [(0, 0, "m")]

    def test_tags_distinguish_instances(self):
        world, hosts = build()

        def go():
            hosts[0].rb.broadcast("first")
            hosts[0].rb.broadcast("second")
            hosts[1].rb.broadcast("third")

        world.scheduler.schedule_at(0.0, "go", go)
        world.run()
        for host in hosts:
            assert sorted(host.delivered) == [
                (0, 0, "first"),
                (0, 1, "second"),
                (1, 0, "third"),
            ]

    def test_no_duplicate_delivery(self):
        world, hosts = build()
        world.scheduler.schedule_at(0.0, "go", lambda: hosts[0].rb.broadcast("m"))
        world.run()
        assert all(h.rb.delivered_count == 1 for h in hosts)

    def test_filter_passes_foreign_payloads(self):
        world, hosts = build()
        assert not hosts[0].rb.filter_message(1, "not-rb-traffic")


class TestConsistencyUnderEquivocation:
    @pytest.mark.parametrize("seed", range(12))
    def test_no_two_correct_deliver_different_branches(self, seed):
        world, hosts = build(
            classes=[RbHost, RbHost, RbHost, RbEquivocator],
            seed=seed,
            delay=UniformDelay(0.1, 2.0),
        )
        world.run(max_time=200)
        values = {
            payload
            for host in hosts[:3]
            for (_o, _t, payload) in host.delivered
        }
        assert len(values) <= 1, values

    def test_totality_if_one_correct_delivers_all_do(self):
        for seed in range(12):
            world, hosts = build(
                classes=[RbHost, RbHost, RbHost, RbEquivocator],
                seed=seed,
                delay=UniformDelay(0.1, 2.0),
            )
            world.run(max_time=200)
            delivered_counts = [len(h.delivered) for h in hosts[:3]]
            assert len(set(delivered_counts)) == 1, delivered_counts


class TestFaultTolerance:
    def test_crashed_witness_does_not_block(self):
        world, hosts = build(n=4, f=1)
        world.crash_at(2, 0.0)
        world.scheduler.schedule_at(0.1, "go", lambda: hosts[0].rb.broadcast("m"))
        world.run()
        for host in (hosts[0], hosts[1], hosts[3]):
            assert host.delivered == [(0, 0, "m")]

    def test_spoofed_send_on_wrong_channel_ignored(self):
        # A SEND whose identity field does not match its channel is
        # dropped (channels are authenticated).
        world, hosts = build()

        def spoof():
            hosts[3].send(0, RbSend(sender=1, tag=0, payload="forged"))
            hosts[3].send(1, RbSend(sender=1, tag=0, payload="forged"))

        world.scheduler.schedule_at(0.0, "go", spoof)
        world.run()
        assert all(h.delivered == [] for h in hosts)

    def test_ready_amplification_completes_stragglers(self):
        # Deliver even when the origin's SEND is missing at one process:
        # f+1 READYs re-trigger READY, 2f+1 deliver.
        world, hosts = build(n=7, f=2, delay=UniformDelay(0.1, 1.0), seed=3)
        world.scheduler.schedule_at(0.0, "go", lambda: hosts[0].rb.broadcast("m"))
        world.run()
        assert all(h.delivered == [(0, 0, "m")] for h in hosts)


class TestDegenerateWorlds:
    """Regression: f=0 and single-process worlds must still deliver."""

    def test_single_process_world_delivers_to_self(self):
        world, hosts = build(n=1, f=0, classes=[RbHost])
        rb = hosts[0].rb
        assert (rb.echo_quorum, rb.ready_amplify, rb.ready_deliver) == (1, 1, 1)
        world.scheduler.schedule_at(0.0, "go", lambda: rb.broadcast("solo"))
        world.run()
        assert hosts[0].delivered == [(0, 0, "solo")]

    def test_f_zero_pair_delivers(self):
        world, hosts = build(n=2, f=0, classes=[RbHost, RbHost])
        world.scheduler.schedule_at(0.0, "go", lambda: hosts[1].rb.broadcast("m"))
        world.run()
        assert all(h.delivered == [(1, 0, "m")] for h in hosts)

    def test_f_zero_quorums_are_simple_majorities(self):
        world, hosts = build(n=3, f=0, classes=[RbHost] * 3)
        rb = hosts[0].rb
        assert rb.echo_quorum == 2
        assert rb.ready_amplify == 1
        assert rb.ready_deliver == 1


class TestDuplicateDeliveries:
    """Regression: replayed wire traffic must never double-deliver."""

    def test_replayed_ready_does_not_redeliver(self):
        world, hosts = build()
        world.scheduler.schedule_at(0.0, "go", lambda: hosts[0].rb.broadcast("m"))
        world.run()
        assert hosts[1].delivered == [(0, 0, "m")]
        replay = RbReady(sender=2, origin=0, tag=0, payload="m")
        for _ in range(3):
            assert hosts[1].rb.filter_message(2, replay)
        world.run()
        assert hosts[1].delivered == [(0, 0, "m")]
        assert hosts[1].rb.delivered_count == 1

    def test_replayed_send_does_not_reecho(self):
        world, hosts = build()
        sends = []
        world.scheduler.schedule_at(0.0, "go", lambda: hosts[0].rb.broadcast("m"))
        world.run()
        before = world.network.messages_sent
        # A duplicate SEND on the origin's own channel: the slot already
        # echoed, so no new ECHO traffic may be generated.
        hosts[1].rb.filter_message(0, RbSend(sender=0, tag=0, payload="m"))
        world.run()
        assert world.network.messages_sent == before
        del sends

    def test_duplicate_echoes_from_one_witness_count_once(self):
        world, hosts = build()
        echo = RbEcho(sender=2, origin=3, tag=7, payload="x")
        hosts[1].rb.filter_message(2, echo)
        hosts[1].rb.filter_message(2, echo)
        slot = hosts[1].rb._slots[(3, 7)]
        (witnesses,) = slot.echoes.values()
        assert witnesses == {2}
