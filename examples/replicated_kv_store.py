#!/usr/bin/env python
"""A Byzantine fault-tolerant replicated key-value store.

Four replicas run a replicated log where every slot is one instance of
the transformed (DSN 2000, Figure 3) Vector Consensus protocol. Replica
3 is compromised and corrupts every vector it sends — the correct
replicas converge to identical stores anyway, and convict it.

Run:  python examples/replicated_kv_store.py
"""

from repro.byzantine.transformed_attacks import TCorruptVectorAttacker
from repro.replication import Command, build_replicated_system, materialise

N = 4
SLOTS = 3

# Each replica's clients issue a stream of writes.
workloads = [
    [Command("set", f"user:{pid}:{slot}", f"payload-{pid}-{slot}") for slot in range(SLOTS)]
    for pid in range(N)
]


def corrupt_engine(pid, proposal, params, authority, detector, config):
    return TCorruptVectorAttacker(
        proposal=proposal, params=params, authority=authority,
        detector=detector, config=config,
    )


system = build_replicated_system(
    workloads,
    target_slots=SLOTS,
    seed=99,
    byzantine={3: corrupt_engine},
)
result = system.run()
print(f"run: {result.reason} at t={result.end_time:.1f}, "
      f"{system.world.network.messages_sent} messages")

logs = system.correct_logs()
print(f"\ncommitted log ({len(logs[0])} commands, identical on all correct replicas):")
for command in logs[0]:
    print(f"  {command.op} {command.key} = {command.value}")

stores = [materialise(log) for log in logs]
assert all(log == logs[0] for log in logs), "logs diverged!"
assert all(store == stores[0] for store in stores), "stores diverged!"
print(f"\nstore ({len(stores[0])} keys), identical on every correct replica.")

print("\nconvictions accumulated across slots:")
for pid in sorted(system.correct_pids):
    print(f"  replica {pid}: faulty = {sorted(system.replicas[pid].faulty_union)}")
assert all(3 in system.replicas[pid].faulty_union for pid in system.correct_pids)
print("\nThe corrupting replica was convicted by every correct replica.")
