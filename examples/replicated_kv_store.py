#!/usr/bin/env python
"""A long-lived BFT replicated key-value service, end to end.

Four replicas run the service runtime from ``repro.service``: open-loop
clients submit commands, replicas pack them into batches and pipeline
the Vector Consensus slots, certify a checkpoint every two applied slots
(f+1 matching signed digests), and compact their logs under it. Midway,
replica 2 is taken down and restarted with its state wiped — it rejoins
through certified state transfer and commits new slots.

Run:  python examples/replicated_kv_store.py
"""

from repro.service import ServiceConfig, build_service_system, service_digest

config = ServiceConfig(
    n_replicas=4,
    n_clients=2,
    requests_per_client=25,
    rate=0.5,              # open-loop Poisson arrivals per client
    batch_size=4,
    window=2,              # pipelining: two slots in flight
    checkpoint_interval=2,
    seed=99,
)
system = build_service_system(config, recoveries=((2, 25.0, 60.0),))
result = system.run(max_time=2_500.0)
print(f"run: {result.reason} at t={result.end_time:.1f}, "
      f"{system.world.network.messages_sent} messages")

# -- clients -> batches -> commits ------------------------------------------
total = config.n_clients * config.requests_per_client
print(f"\nclients completed {system.completed_requests()}/{total} requests; "
      f"the service committed {system.committed_commands()} commands.")
assert system.all_clients_done(), "a client is still waiting!"

# -- checkpoints -------------------------------------------------------------
assert system.checkpoints_agree(), "checkpoint digests diverged!"
print(f"checkpoints: {system.certified_checkpoints()} counts certified "
      f"(f+1 matching signed digests each), logs compacted under them.")
digests = {
    service_digest(system.replicas[pid].store, system.replicas[pid].executed)
    for pid in system.correct_pids
}
assert len(digests) == 1, "stores diverged!"
print(f"final state digest {next(iter(digests))[:16]}..., "
      f"identical on every correct replica.")

# -- recovery ----------------------------------------------------------------
replica = system.replicas[2]
assert replica.state_transfers_completed, "replica 2 never caught up!"
when, installed, frontier = replica.state_transfers_completed[-1]
print(f"\nreplica 2 went down at t=25, restarted empty at t=60,")
print(f"  installed a certified snapshot of {installed} slots at t={when:.1f}")
print(f"  and kept committing: applied frontier now {replica.next_apply} "
      f"(> {installed}, so it rejoined the pipeline).")
assert replica.next_apply > installed
print("\nThe restarted replica recovered by state transfer and rejoined.")
