#!/usr/bin/env python
"""The methodology applied twice: transformed HR vs transformed CT.

Runs the same Byzantine scenario — a coordinator that corrupts the
values it sends — against both applications of the paper's recipe, and
shows the CT transformation's distinctive feature: the *verifiable
phase-2 selection* (a proposal must be the deterministic highest-ts pick
of its own attached estimate quorum).

Run:  python examples/second_case_study.py
See:  docs/METHODOLOGY.md for the step-by-step recipe this follows.
"""

from repro import build_transformed_system, check_detection, check_vector_consensus
from repro.byzantine import transformed_attack
from repro.byzantine.ct_attacks import ct_attack

PROPOSALS = ["north", "south", "east", "west"]

print("same attack intent, two transformed protocols\n")

for base, attack in (
    ("hurfin-raynal", transformed_attack(0, "corrupt-vector")),
    ("chandra-toueg", ct_attack(0, "ct-corrupt-selection")),
):
    system = build_transformed_system(
        PROPOSALS, base=base, byzantine=attack, seed=17
    )
    system.run(max_time=2_000)
    report = check_vector_consensus(system)
    detection = check_detection(system)
    survivors = sorted(system.correct_pids)
    decisions = {pid: system.processes[pid].decision for pid in survivors}
    print(f"[{base}]")
    print(f"  all properties hold : {report.all_hold}")
    print(f"  decided vector      : {decisions[survivors[0]]}")
    print(f"  convictions of p0   : {detection.detectors_per_culprit.get(0, 0)}"
          f" / {len(survivors)} correct processes")
    first = next(
        (
            r
            for pid in survivors
            for r in system.processes[pid].monitor_bank.reports
            if r.culprit == 0
        ),
        None,
    )
    if first is not None:
        reason = first.reason if len(first.reason) < 110 else first.reason[:107] + "..."
        print(f"  first fault report  : {reason}")
    print()
    assert report.all_hold

print("Both transformations absorb the attack; note the CT report cites the")
print("corrupted *selection* — a justification check only CT's certificates")
print("make possible (docs/METHODOLOGY.md, step 3).")
