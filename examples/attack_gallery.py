#!/usr/bin/env python
"""Tour of the fault taxonomy: every attack vs the five-module defence.

Runs each Byzantine behaviour in the catalogue against a 4-process
transformed system and reports, per attack: the paper's failure class,
the module responsible for catching it, whether the correct processes
kept all properties, and who got convicted or suspected.

Run:  python examples/attack_gallery.py
"""

from repro import (
    TRANSFORMED_ATTACKS,
    build_transformed_system,
    check_detection,
    check_vector_consensus,
    transformed_attack,
)
from repro.analysis.reporting import print_table
from repro.byzantine import transformed_attack_profile

SEAT = {"equivocate-current": 0, "wrong-cert-current": 0}
PROPOSALS = ["a", "b", "c", "d"]

rows = []
for name in sorted(TRANSFORMED_ATTACKS):
    attacker = SEAT.get(name, 3)
    system = build_transformed_system(
        PROPOSALS,
        byzantine=transformed_attack(attacker, name),
        seed=11,
    )
    system.run(max_time=2_000)
    profile = transformed_attack_profile(name)
    report = check_vector_consensus(system)
    detection = check_detection(system)
    rows.append(
        [
            name,
            profile.failure_class.value,
            profile.detecting_module.value,
            "yes" if report.all_hold else "NO",
            detection.detectors_per_culprit.get(attacker, 0),
            "yes" if attacker in detection.suspected_by_any else "no",
        ]
    )

print_table(
    "Attack gallery vs the transformed protocol (n=4, F=1)",
    ["attack", "failure class", "owning module", "safe", "convictions", "suspected"],
    rows,
)

assert all(row[3] == "yes" for row in rows), "every attack must be absorbed"
print("Every attack absorbed; consult the convictions column for detection.")
