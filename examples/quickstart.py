#!/usr/bin/env python
"""Quickstart: Byzantine-resilient Vector Consensus in ten lines.

Four processes propose values; process 3 is Byzantine and corrupts the
vector in every CURRENT it sends. The transformed protocol (Baldoni,
Hélary & Raynal, DSN 2000 — Figure 3) decides correctly anyway, and
every correct process convicts the attacker.

Run:  python examples/quickstart.py
"""

from repro import build_transformed_system, check_vector_consensus, transformed_attack

system = build_transformed_system(
    proposals=["alpha", "bravo", "charlie", "delta"],
    byzantine=transformed_attack(3, "corrupt-vector"),
    seed=2026,
)
system.run()

print("decisions of the correct processes:")
for pid, decision in sorted(system.decisions().items()):
    print(f"  p{pid} decided {decision}")

print("\nfault declarations (each process's faulty set):")
for process in system.processes:
    if process.pid in system.correct_pids:
        print(f"  p{process.pid}: faulty = {sorted(process.faulty)}")

report = check_vector_consensus(system)
print(
    f"\nAgreement={report.agreement}  Termination={report.termination}  "
    f"VectorValidity={report.validity}"
)
assert report.all_hold
