#!/usr/bin/env python
"""Why the paper quietly switched to FIFO channels — a live counterexample.

The DSN 2000 paper adapts Hurfin–Raynal to FIFO channels with a single
remark ("this simplifies the solution"). This example shows the
assumption is *load-bearing*: one hand-crafted adversarial schedule —
zero faulty processes, only unlucky suspicions and message timing — is
replayed twice. Over non-FIFO channels a NEXT vote overtakes the CURRENT
that preceded it, the round-2 coordinator proposes a stale value, and
two different values get decided. Over FIFO channels the identical
schedule is harmless.

Run:  python examples/fifo_anomaly.py
See:  benchmarks/test_e14_fifo_necessity.py and DESIGN.md §5 ("Why FIFO
      is load-bearing") for the general argument.
"""

from repro.analysis.properties import check_crash_consensus
from repro.analysis.tracefmt import render_sequence
from repro.consensus.hurfin_raynal import HurfinRaynalProcess
from repro.detectors.oracles import ScriptedDetector
from repro.messages.consensus import Current, Decide
from repro.sim.network import ScriptedDelay
from repro.sim.world import World
from repro.systems import ConsensusSystem

N = 5
SLOW, FAST = 200.0, 0.2


def adversarial_schedule() -> ScriptedDelay:
    return ScriptedDelay(
        rules=[
            (lambda s, d, p: isinstance(p, Decide), SLOW),
            (lambda s, d, p: isinstance(p, Current) and p.round == 1 and d == 1,
             SLOW),
            (lambda s, d, p: isinstance(p, Current) and p.round == 1
             and (s, d) in {(2, 3), (2, 4), (3, 4)}, SLOW),
            (lambda s, d, p: s == 3 and d == 1, FAST),  # the overtake
        ],
        default=1.0,
    )


def run(fifo: bool) -> ConsensusSystem:
    processes = [
        HurfinRaynalProcess(
            proposal=f"v{pid}",
            detector=ScriptedDetector([(0, 0.0, 10.0)] if pid in (1, 4) else []),
            suspicion_poll=0.1,
        )
        for pid in range(N)
    ]
    world = World(processes, seed=0, delay_model=adversarial_schedule(), fifo=fifo)
    system = ConsensusSystem(world=world, processes=processes)
    system.run(max_events=100_000, max_time=1_000.0)
    return system


for fifo in (False, True):
    label = "FIFO channels" if fifo else "non-FIFO channels"
    system = run(fifo)
    report = check_crash_consensus(system)
    decisions = {p.pid: p.decision for p in system.processes if p.decided}
    print(f"=== {label} ===")
    print(f"decisions : {decisions}")
    print(f"agreement : {report.agreement}")
    if not fifo:
        print("\nfirst 14 steps of the run (note p1 reaching round 2 while")
        print("round-1 CURRENTs are still in flight towards it):\n")
        print(render_sequence(system.world.trace, N, max_events=14))
        assert not report.agreement, "the counterexample should fire"
    else:
        assert report.agreement
    print()

print("Identical schedule, opposite outcomes: the FIFO assumption is what")
print("carries the decided value across rounds (DESIGN.md §5).")
