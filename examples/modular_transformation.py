#!/usr/bin/env python
"""The methodology as an API: assembling the five modules by hand.

This example uses :class:`repro.core.transformer.TransformationBlueprint`
directly — the generic, protocol-independent part of the paper's
methodology — instead of the one-call convenience builder. It then shows
the flip side: ablating a module (the certificate analyser) and watching
the very attack that module owns slip through.

Run:  python examples/modular_transformation.py
"""

from repro import ModuleConfig, check_vector_consensus, transformed_attack
from repro.consensus.transformed import TransformedConsensusProcess
from repro.core.specs import SystemParameters
from repro.core.transformer import TransformationBlueprint
from repro.crypto.keys import KeyAuthority
from repro.crypto.signatures import SignatureScheme
from repro.detectors.diamond_m import MutenessDetector
from repro.sim.world import World
from repro.systems import build_transformed_system

N = 4
PROPOSALS = [f"v{i}" for i in range(N)]

# -- 1. assemble the five-module process structure explicitly ----------------

params = SystemParameters.for_n(N)
print(f"system: n={params.n}, F={params.f}, quorum n-F={params.quorum}, "
      f"alpha n-2F={params.alpha}")

keys = KeyAuthority(N, seed=0)  # the paper's private/public key pairs
scheme = SignatureScheme(keys)

blueprint = TransformationBlueprint(
    params=params,
    scheme=scheme,
    key_authority=keys,
    # module 2: muteness failure detection (◇M, timeout implementation)
    muteness_factory=lambda pid: MutenessDetector(initial_timeout=8.0),
    # modules 3+4+5: monitor bank, certification and the protocol module
    # are assembled inside the transformed process
    protocol_factory=lambda pid, proposal, authority, detector, config: (
        TransformedConsensusProcess(
            proposal=proposal,
            params=params,
            authority=authority,
            detector=detector,
            config=config,
        )
    ),
)

processes = blueprint.build_all(PROPOSALS)
world = World(processes, seed=3)
world.run(max_time=2_000)
print("hand-assembled system decided:",
      {p.pid: p.decision for p in processes})
assert all(p.decided for p in processes)

# -- 2. ablation: remove the certificate analyser, replay an attack -----------

print("\nablation: certification module OFF, corrupt-vector attack ON")
for label, config in (
    ("full five-module structure", ModuleConfig.full()),
    ("certification ablated", ModuleConfig.full().without("certification")),
):
    system = build_transformed_system(
        PROPOSALS,
        byzantine=transformed_attack(0, "corrupt-vector"),
        config=config,
        seed=5,
    )
    system.run(max_time=2_000)
    report = check_vector_consensus(system)
    print(f"  {label:30s} -> all properties hold: {report.all_hold}")
    if report.violations:
        print(f"      e.g. {report.violations[0]}")
