#!/usr/bin/env python
"""The paper's motivation, live: why crash-tolerant is not enough.

Scenario: a replicated configuration service. Five replicas run
consensus on which configuration epoch to activate. The service was
built for *crash* faults (Figure 2 of the paper) — then one replica is
compromised and starts lying.

Act 1 — the crash protocol under a crash: all good.
Act 2 — the same protocol under a lying replica: safety collapses
        (replicas activate a configuration nobody proposed).
Act 3 — the transformed protocol (Figure 3) under the same lie: the
        attack is absorbed, the liar is convicted by every replica.

Run:  python examples/crash_vs_byzantine.py
"""

from repro import (
    build_crash_system,
    build_transformed_system,
    check_crash_consensus,
    check_vector_consensus,
    crash_attack,
    transformed_attack,
)

EPOCHS = [f"epoch-{i}" for i in range(5)]
SEED = 7


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


# -- Act 1: the crash protocol does its job under a crash --------------------

banner("Act 1: crash protocol, one crashed replica")
system = build_crash_system(EPOCHS, crash_at={2: 0.5}, seed=SEED)
system.run()
report = check_crash_consensus(system)
print(f"decisions: {system.decisions()}")
print(f"all properties hold: {report.all_hold}")
assert report.all_hold

# -- Act 2: the same protocol against a liar ---------------------------------

banner("Act 2: crash protocol, one LYING replica (spurious DECIDE)")
system = build_crash_system(
    EPOCHS, byzantine=crash_attack(4, "spurious-decide"), seed=SEED
)
system.run()
report = check_crash_consensus(system)
print(f"decisions: {system.decisions()}")
print(f"violations: {report.violations}")
assert not report.validity, "the crash protocol must fall to this attack"
print("--> replicas activated a configuration NOBODY proposed.")

# -- Act 3: the transformed protocol absorbs the same intent ------------------

banner("Act 3: transformed protocol, same attacker intent (forged DECIDE)")
system = build_transformed_system(
    EPOCHS, byzantine=transformed_attack(4, "forged-decide"), seed=SEED
)
system.run()
report = check_vector_consensus(system)
print(f"decisions: {system.decisions()}")
print(f"all properties hold: {report.all_hold}")
for process in system.processes:
    if process.pid in system.correct_pids:
        print(f"  p{process.pid} declares faulty: {sorted(process.faulty)}")
assert report.all_hold
print("--> the forged DECIDE was rejected; the liar is in every faulty set.")
